// Fig. 10 — Profiling: the controller rebuilds the aggregated state-size
// polyline of the dynamic HAUs from reported turning points and derives
// smin/smax from the per-period minima. Two parts:
//  (1) the paper's worked zigzag example (two dynamic HAUs, period T),
//  (2) live profiling on BCP: turning points reported by the historical
//      image operators through the real controller pipeline.
#include <cstdio>

#include "ft/aa_controller.h"
#include "harness.h"
#include "statesize/turning_point.h"

namespace {

using namespace ms;
using namespace ms::bench;

void worked_example() {
  std::printf("--- paper's worked example (two dynamic HAUs, period T=6) "
              "---\n");
  // HAU 1 and HAU 2 polylines with the turning-point values the figure
  // marks (250/130/40/30/250 and 100/200/170/120/50/220 at the labelled
  // instants); the aggregate's per-period minima give smin/smax.
  statesize::PolylineSignal h1, h2;
  h1.add_point(SimTime::seconds(0), 100);
  h1.add_point(SimTime::seconds(3), 250);
  h1.add_point(SimTime::seconds(6), 100);
  h1.add_point(SimTime::seconds(9), 250);
  h1.add_point(SimTime::seconds(12), 100);
  h1.add_point(SimTime::seconds(15), 250);
  h2.add_point(SimTime::seconds(0), 200);
  h2.add_point(SimTime::seconds(2), 130);
  h2.add_point(SimTime::seconds(5), 220);
  h2.add_point(SimTime::seconds(8), 40);
  h2.add_point(SimTime::seconds(10), 170);
  h2.add_point(SimTime::seconds(13), 30);
  h2.add_point(SimTime::seconds(15), 180);

  std::printf("%-6s %-10s %-10s %-10s\n", "t", "HAU1", "HAU2", "total");
  for (int t = 0; t <= 15; ++t) {
    const double v1 = h1.value_at(SimTime::seconds(t));
    const double v2 = h2.value_at(SimTime::seconds(t));
    std::printf("%-6d %-10.0f %-10.0f %-10.0f\n", t, v1, v2, v1 + v2);
  }
  // Per-period minima of the aggregate (periods [0,6), [6,12), [12,15]).
  statesize::PolylineSignal total;
  for (int t = 0; t <= 15; ++t) {
    total.add_point(SimTime::seconds(t),
                    h1.value_at(SimTime::seconds(t)) +
                        h2.value_at(SimTime::seconds(t)));
  }
  double smin = 1e18, smax = 0.0;
  for (int p = 0; p < 2; ++p) {
    const auto [t, v] = total.minimum_in(SimTime::seconds(6 * p),
                                         SimTime::seconds(6 * (p + 1)));
    std::printf("period %d minimum: %.0f at t=%.0f  (best checkpoint "
                "moment)\n",
                p + 1, v, t.to_seconds());
    smin = std::min(smin, v);
    smax = std::max(smax, v);
  }
  const double relaxed = std::max(smax, smin * 1.2);
  std::printf("smin=%.0f smax=%.0f (relaxation alpha >= 20%% => smax=%.0f)\n",
              smin, smax, relaxed);
}

void live_profiling(bool quick) {
  std::printf("\n--- live profiling on BCP (controller pipeline) ---\n");
  const SimTime period = quick ? SimTime::seconds(90) : SimTime::seconds(200);
  Experiment exp(AppKind::kBcp, Scheme::kMsSrcApAa, /*checkpoints=*/1, period,
                 0x5eedULL, 10);
  exp.app().start();
  exp.ms()->start();
  auto& sim = exp.sim();
  // Observation (1 period) + profiling (profile_periods) + margin.
  sim.run_until(period * std::int64_t{4} + SimTime::seconds(30));
  auto& aa = exp.ms()->aa();
  std::printf("dynamic HAUs detected: ");
  for (const int h : aa.dynamic_haus()) {
    std::printf("%s ", exp.app().hau(h).name().c_str());
  }
  std::printf("\nphase: %s\n",
              aa.phase() == ms::ft::AaController::Phase::kExecution
                  ? "execution"
                  : "profiling");
  std::printf("derived thresholds: smin=%s smax=%s (alpha=%.0f%%)\n",
              format_bytes(static_cast<Bytes>(aa.smin())).c_str(),
              format_bytes(static_cast<Bytes>(aa.smax())).c_str(),
              aa.smin() > 0 ? (aa.smax() / aa.smin() - 1.0) * 100.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 10: state-size profiling ===\n");
  worked_example();
  live_profiling(ms::bench::quick_mode(argc, argv));
  return 0;
}
