// Ablation — delta checkpointing (paper Sec. V: the Cooperative HA
// Solution's technique, which the paper suggests "could be applied jointly"
// with Meteor Shower): write only the state changed since the previous
// checkpoint. Cuts checkpoint disk I/O for append-heavy state; recovery
// still reads the full reconstructed state.
#include <cstdio>

#include "ckpt_protocols.h"

int main(int argc, char** argv) {
  using namespace ms;
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  const SimTime window = quick ? SimTime::minutes(2) : SimTime::minutes(8);
  const int tmi_minutes = quick ? 2 : 8;

  std::printf("=== Ablation: delta checkpointing (BCP, MS-src+ap, 4 "
              "checkpoints) ===\n\n");
  TablePrinter table({"mode", "ckpts", "avg ckpt time", "avg written",
                      "throughput"},
                     16);
  for (const bool delta : {false, true}) {
    Experiment exp(AppKind::kBcp, Scheme::kMsSrcAp, 4, window, 0x5eedULL,
                   tmi_minutes,
                   [delta](ft::FtParams& p) { p.delta_checkpoints = delta; });
    exp.warmup();
    exp.measure();
    const auto& ckpts = exp.ms()->checkpoints();
    double total_s = 0.0;
    double written = 0.0;
    int n = 0;
    for (const auto& c : ckpts) {
      total_s += c.slowest.total().to_seconds();
      written += static_cast<double>(c.total_declared);
      ++n;
    }
    table.row({delta ? "delta" : "full", fmt(n, 0),
               n > 0 ? fmt(total_s / n, 2) + "s" : "-",
               n > 0 ? fmt_bytes(static_cast<Bytes>(written / n)) : "-",
               fmt(exp.throughput_tuples(), 0)});
  }
  std::printf("\nBCP's historical-image state is append-mostly between bus "
              "arrivals, so deltas\nshrink the written volume; recovery cost "
              "is unchanged (base + deltas re-read).\n");
  return 0;
}
