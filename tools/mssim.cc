// mssim — command-line driver for the Meteor Shower simulator.
//
// Runs one of the three paper applications under a chosen fault-tolerance
// scheme on the simulated 56-node cluster, optionally injecting a failure,
// and prints a run report: throughput, latency, checkpoint and recovery
// statistics, network byte breakdown, and the dynamic state profile.
//
//   mssim --app tmi --scheme ms-src+ap+aa --checkpoints 3
//   mssim --app signalguru --scheme ms-src+ap --fail-at 300 --window 10
//   mssim --app bcp --scheme baseline --checkpoints 8 --window 5
//
// With --backend=rt the same fault-tolerance protocol drives the
// real-threads engine instead of the simulator: a demo pipeline runs on
// actual worker threads for --run-for wall seconds, checkpointing to
// --dir, optionally crashing mid-run (--fail-at, wall seconds) and
// recovering by restart-and-replay:
//
//   mssim --backend=rt --scheme ms-src+ap --run-for 3 --fail-at 1.5
//         --trace rt_trace.json     (one command line)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "core/stdops.h"
#include "failure/burst.h"
#include "ft/rt_runtime.h"
#include "harness.h"
#include "net/network.h"
#include "rt/engine.h"

namespace {

using namespace ms;
using namespace ms::bench;

struct Options {
  AppKind app = AppKind::kTmi;
  Scheme scheme = Scheme::kMsSrcAp;
  int checkpoints = 3;
  int window_minutes = 10;
  double fail_at_seconds = -1.0;  // <0: no failure injection
  std::uint64_t seed = 0x9d2cULL;
  std::string trace_file;    // empty: no trace capture
  std::string metrics_file;  // empty: no metrics dump
  bool backend_rt = false;   // --backend=rt: real threads, wall clock
  double run_for_seconds = 2.0;               // rt: measurement window
  std::string rt_dir = "/tmp/mssim_rt";       // rt: durable directory
  bool auto_recover = false;  // rt: supervised self-heal instead of a manual
                              // restart-and-recover after --fail-at
  // rt: fsync discipline for durable artifacts. kNone by default — mssim is
  // a measurement tool, not a production deployment — so bench numbers are
  // not dominated by the disk.
  storage::SyncMode sync_mode = storage::SyncMode::kNone;
  std::string net_faults;     // sim: unreliable-channel spec, see usage()
  bool help = false;
};

void usage() {
  std::printf(
      "mssim — Meteor Shower cluster simulator\n\n"
      "  --backend sim|rt             sim: discrete-event simulator (default)\n"
      "                               rt: the same protocol on the\n"
      "                               real-threads engine (demo pipeline)\n"
      "  --app tmi|bcp|signalguru     application (default tmi, sim only)\n"
      "  --scheme baseline|ms-src|ms-src+ap|ms-src+ap+aa|ms-src+ap+delta\n"
      "                               fault-tolerance scheme (default ms-src+ap)\n"
      "  --checkpoints N              checkpoints in the window (default 3)\n"
      "  --window M                   measurement window, minutes (default 10,\n"
      "                               sim only)\n"
      "  --run-for S                  rt only: wall-clock window, seconds\n"
      "                               (default 2)\n"
      "  --dir PATH                   rt only: durable directory for\n"
      "                               checkpoints and source logs (wiped at\n"
      "                               start; default /tmp/mssim_rt)\n"
      "  --fail-at S                  sim: kill all application nodes S\n"
      "                               seconds into the window; rt: crash the\n"
      "                               process S wall seconds in. Both\n"
      "                               auto-recover\n"
      "  --sync-mode none|commit|always\n"
      "                               rt only: fsync discipline for durable\n"
      "                               artifacts (default none: page cache\n"
      "                               only, so measurements are not disk-\n"
      "                               bound; commit syncs rename commit\n"
      "                               points; always adds per-append syncs)\n"
      "  --auto-recover               rt only: run the heartbeat failure\n"
      "                               detector and let the supervisor heal\n"
      "                               the --fail-at crash in place (no\n"
      "                               manual restart)\n"
      "  --net-faults SPEC            sim only: run the window over an\n"
      "                               unreliable network. SPEC is\n"
      "                               comma-separated key=value pairs:\n"
      "                               drop, dup, reorder, delayp (probabili-\n"
      "                               ties), delay (seconds), and\n"
      "                               cats=token+control (which categories;\n"
      "                               'all' for every one; default\n"
      "                               token+control). Seeded from --seed.\n"
      "                               e.g. --net-faults drop=0.05,dup=0.02\n"
      "  --seed X                     simulation seed\n"
      "  --trace FILE                 write a Chrome trace-event JSON of the\n"
      "                               run's protocol events (chrome://tracing\n"
      "                               or tools/mstrace can read it)\n"
      "  --metrics FILE               write the runtime metrics registry as\n"
      "                               flat JSON at exit\n"
      "  --help\n");
}

bool parse(int argc, char** argv, Options* opt) {
  // Accept both "--flag value" and "--flag=value".
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return args[++i].c_str();
    };
    if (arg == "--help" || arg == "-h") {
      opt->help = true;
      return true;
    }
    if (arg == "--app") {
      const char* v = next("--app");
      if (v == nullptr) return false;
      if (std::strcmp(v, "tmi") == 0) {
        opt->app = AppKind::kTmi;
      } else if (std::strcmp(v, "bcp") == 0) {
        opt->app = AppKind::kBcp;
      } else if (std::strcmp(v, "signalguru") == 0) {
        opt->app = AppKind::kSignalGuru;
      } else {
        std::fprintf(stderr, "unknown app: %s\n", v);
        return false;
      }
    } else if (arg == "--scheme") {
      const char* v = next("--scheme");
      if (v == nullptr) return false;
      if (std::strcmp(v, "baseline") == 0) {
        opt->scheme = Scheme::kBaseline;
      } else if (std::strcmp(v, "ms-src") == 0) {
        opt->scheme = Scheme::kMsSrc;
      } else if (std::strcmp(v, "ms-src+ap") == 0) {
        opt->scheme = Scheme::kMsSrcAp;
      } else if (std::strcmp(v, "ms-src+ap+aa") == 0) {
        opt->scheme = Scheme::kMsSrcApAa;
      } else if (std::strcmp(v, "ms-src+ap+delta") == 0) {
        opt->scheme = Scheme::kMsSrcApDelta;
      } else {
        std::fprintf(stderr, "unknown scheme: %s\n", v);
        return false;
      }
    } else if (arg == "--backend") {
      const char* v = next("--backend");
      if (v == nullptr) return false;
      if (std::strcmp(v, "sim") == 0) {
        opt->backend_rt = false;
      } else if (std::strcmp(v, "rt") == 0) {
        opt->backend_rt = true;
      } else {
        std::fprintf(stderr, "unknown backend: %s\n", v);
        return false;
      }
    } else if (arg == "--run-for") {
      const char* v = next("--run-for");
      if (v == nullptr) return false;
      opt->run_for_seconds = std::atof(v);
    } else if (arg == "--dir") {
      const char* v = next("--dir");
      if (v == nullptr) return false;
      opt->rt_dir = v;
    } else if (arg == "--checkpoints") {
      const char* v = next("--checkpoints");
      if (v == nullptr) return false;
      opt->checkpoints = std::atoi(v);
    } else if (arg == "--window") {
      const char* v = next("--window");
      if (v == nullptr) return false;
      opt->window_minutes = std::atoi(v);
    } else if (arg == "--auto-recover") {
      opt->auto_recover = true;
    } else if (arg == "--sync-mode") {
      const char* v = next("--sync-mode");
      if (v == nullptr) return false;
      const std::string s = v;
      if (s == "none") {
        opt->sync_mode = storage::SyncMode::kNone;
      } else if (s == "commit") {
        opt->sync_mode = storage::SyncMode::kCommit;
      } else if (s == "always") {
        opt->sync_mode = storage::SyncMode::kAlways;
      } else {
        std::fprintf(stderr, "unknown --sync-mode: %s\n", v);
        return false;
      }
    } else if (arg == "--net-faults") {
      const char* v = next("--net-faults");
      if (v == nullptr) return false;
      opt->net_faults = v;
    } else if (arg == "--fail-at") {
      const char* v = next("--fail-at");
      if (v == nullptr) return false;
      opt->fail_at_seconds = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      opt->seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return false;
      opt->trace_file = v;
    } else if (arg == "--metrics") {
      const char* v = next("--metrics");
      if (v == nullptr) return false;
      opt->metrics_file = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// "drop=0.05,dup=0.02,reorder=0.1,delayp=0.05,delay=0.001,cats=token+control"
/// → a seeded FaultPlan. One FaultSpec is parsed and applied to every listed
/// category (default token+control, the protocol's loss-sensitive channels).
bool parse_net_faults(const std::string& spec, std::uint64_t seed,
                      net::FaultPlan* plan) {
  net::FaultSpec fault;
  std::vector<net::MsgCategory> cats = {net::MsgCategory::kToken,
                                        net::MsgCategory::kControl};
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string pair = spec.substr(pos, end - pos);
    pos = end + 1;
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--net-faults: expected key=value, got '%s'\n",
                   pair.c_str());
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    if (key == "drop") {
      fault.drop = std::atof(val.c_str());
    } else if (key == "dup") {
      fault.duplicate = std::atof(val.c_str());
    } else if (key == "reorder") {
      fault.reorder = std::atof(val.c_str());
    } else if (key == "delayp") {
      fault.delay_p = std::atof(val.c_str());
    } else if (key == "delay") {
      fault.delay = SimTime::seconds(std::atof(val.c_str()));
    } else if (key == "cats") {
      cats.clear();
      std::size_t cpos = 0;
      while (cpos <= val.size()) {
        auto cend = val.find('+', cpos);
        if (cend == std::string::npos) cend = val.size();
        const std::string name = val.substr(cpos, cend - cpos);
        cpos = cend + 1;
        if (name == "all") {
          for (int c = 0; c < static_cast<int>(net::MsgCategory::kCount); ++c) {
            cats.push_back(static_cast<net::MsgCategory>(c));
          }
          continue;
        }
        bool found = false;
        for (int c = 0; c < static_cast<int>(net::MsgCategory::kCount); ++c) {
          const auto cat = static_cast<net::MsgCategory>(c);
          if (name == net::msg_category_name(cat)) {
            cats.push_back(cat);
            found = true;
            break;
          }
        }
        if (!found) {
          std::fprintf(stderr, "--net-faults: unknown category '%s'\n",
                       name.c_str());
          return false;
        }
      }
    } else {
      std::fprintf(stderr, "--net-faults: unknown key '%s'\n", key.c_str());
      return false;
    }
  }
  plan->seed = seed == 0 ? 1 : seed;
  for (const auto cat : cats) plan->spec(cat) = fault;
  return true;
}

// --- real-threads backend ---------------------------------------------------

/// Payload for the rt demo pipeline: one integer, 64 declared bytes.
struct RtIntPayload final : core::Payload {
  explicit RtIntPayload(std::int64_t v) : value(v) {}
  std::int64_t value;
  Bytes byte_size() const override { return 64; }
  const char* type_name() const override { return "rt-int"; }
};

/// Keyed relay: per-key running sums as checkpointable state, with dirty-key
/// tracking so the ms-src+ap+delta scheme writes real op_<i>.delta chains in
/// the demo (other schemes ignore the delta hooks and serialize fully).
class RtRelay final : public core::Operator {
 public:
  explicit RtRelay(std::string name) : core::Operator(std::move(name)) {}
  void process(int, const core::Tuple& t, core::OperatorContext& ctx) override {
    const std::int64_t v = t.payload_as<RtIntPayload>()->value;
    const std::int64_t key = v % 64;
    table_[key] += v;
    dirty_.insert(key);
    ctx.emit(0, t);
  }
  Bytes state_size() const override {
    return 8 + static_cast<Bytes>(table_.size()) * 16;
  }
  Bytes state_delta_size() const override {
    return 8 + static_cast<Bytes>(dirty_.size()) * 16;
  }
  void serialize_state(BinaryWriter& w) const override {
    w.write<std::uint64_t>(table_.size());
    for (const auto& [k, v] : table_) {
      w.write(k);
      w.write(v);
    }
  }
  void deserialize_state(BinaryReader& r) override {
    clear_state();
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = r.read<std::int64_t>();
      table_[k] = r.read<std::int64_t>();
    }
  }
  void clear_state() override {
    table_.clear();
    dirty_.clear();
  }
  bool supports_delta() const override { return true; }
  void serialize_delta(BinaryWriter& w) const override {
    w.write<std::uint64_t>(dirty_.size());
    for (const std::int64_t k : dirty_) {
      w.write(k);
      w.write(table_.at(k));
    }
  }
  void apply_delta(BinaryReader& r) override {
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = r.read<std::int64_t>();
      table_[k] = r.read<std::int64_t>();
    }
  }
  void mark_checkpointed() override { dirty_.clear(); }

 private:
  std::map<std::int64_t, std::int64_t> table_;
  std::set<std::int64_t> dirty_;
};

/// Counting sink; the count is its checkpointable state.
class RtCountSink final : public core::Operator {
 public:
  explicit RtCountSink(std::string name) : core::Operator(std::move(name)) {}
  void process(int, const core::Tuple&, core::OperatorContext&) override {
    ++count_;
  }
  Bytes state_size() const override { return 8; }
  void serialize_state(BinaryWriter& w) const override { w.write(count_); }
  void deserialize_state(BinaryReader& r) override {
    count_ = r.read<std::int64_t>();
  }
  void clear_state() override { count_ = 0; }
  std::int64_t count() const { return count_; }

 private:
  std::int64_t count_ = 0;
};

core::QueryGraph rt_demo_graph() {
  core::QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<core::BurstSourceOperator>(
        "src", SimTime::micros(500), 8,
        [](std::int64_t seq) {
          core::Tuple t;
          t.wire_size = 64;
          t.payload = std::make_shared<RtIntPayload>(seq);
          return t;
        });
  });
  const int r0 =
      g.add_operator("relay0", [] { return std::make_unique<RtRelay>("relay0"); });
  const int r1 =
      g.add_operator("relay1", [] { return std::make_unique<RtRelay>("relay1"); });
  const int sink = g.add_sink(
      "sink", [] { return std::make_unique<RtCountSink>("sink"); });
  g.connect(src, r0);
  g.connect(r0, r1);
  g.connect(r1, sink);
  return g;
}

ft::TupleCodec rt_demo_codec() {
  ft::TupleCodec codec;
  codec.encode_payload = [](const core::Payload& p, BinaryWriter& w) {
    w.write(static_cast<const RtIntPayload&>(p).value);
  };
  codec.decode_payload =
      [](BinaryReader& r) -> std::shared_ptr<const core::Payload> {
    return std::make_shared<RtIntPayload>(r.read<std::int64_t>());
  };
  return codec;
}

int run_rt_backend(const Options& opt) {
  ft::RtMode mode = ft::RtMode::kSrcAp;
  switch (opt.scheme) {
    case Scheme::kBaseline:
      mode = ft::RtMode::kBaseline;
      break;
    case Scheme::kMsSrc:
      mode = ft::RtMode::kSrc;
      break;
    case Scheme::kMsSrcAp:
      mode = ft::RtMode::kSrcAp;
      break;
    case Scheme::kMsSrcApAa:
      mode = ft::RtMode::kSrcApAa;
      break;
    case Scheme::kMsSrcApDelta:
      mode = ft::RtMode::kSrcApDelta;
      break;
  }
  const SimTime window = SimTime::seconds(opt.run_for_seconds);
  const SimTime period = window / std::int64_t{opt.checkpoints + 1};

  std::printf("mssim --backend=rt: demo chain under %s, ~%d checkpoint(s) "
              "in %.1f s of wall time\n",
              scheme_name(opt.scheme), opt.checkpoints, opt.run_for_seconds);

  std::filesystem::remove_all(opt.rt_dir);
  ft::RtRuntimeConfig cfg;
  cfg.mode = mode;
  cfg.dir = opt.rt_dir;
  cfg.params.periodic = true;
  cfg.params.checkpoint_period = period;
  if (mode == ft::RtMode::kSrcApAa) {
    cfg.params.state_sample_period = period / 8;
    cfg.params.profile_periods = 1;
    cfg.params.profile_period = period / 2;
    cfg.params.checkpoint_during_profiling = true;
  }
  if (mode == ft::RtMode::kSrcApDelta) {
    // Demo-scale cadence inputs: wall runs last seconds, not hours, so give
    // the controller an MTBF/budget it can act on within the window.
    cfg.params.adaptive_cadence = true;
    cfg.params.mtbf = SimTime::seconds(60);
    cfg.params.recovery_budget = SimTime::seconds(2);
  }
  cfg.codec = rt_demo_codec();
  cfg.sync_mode = opt.sync_mode;
  cfg.auto_recover = opt.auto_recover;

  TraceRecorder trace;
  rt::RtConfig ecfg;
  ecfg.seed = opt.seed;
  if (!opt.trace_file.empty()) ecfg.trace = &trace;
  if (!opt.metrics_file.empty()) ecfg.metrics = &MetricsRegistry::global();

  auto engine = std::make_unique<rt::RtEngine>(rt_demo_graph(), ecfg);
  auto runtime = std::make_unique<ft::RtRuntime>(engine.get(), cfg);
  std::uint64_t ckpts_completed = 0;
  runtime->add_probe([&ckpts_completed](ft::FtPoint p, int hau, std::uint64_t) {
    // Baseline units checkpoint independently; op 0's completed writes
    // stand in for "rounds". The MS modes overwrite this with the
    // coordinator's completed-epoch count below.
    if (p == ft::FtPoint::kCheckpointDone && hau == 0) ++ckpts_completed;
  });
  const Status st = runtime->start();
  if (!st.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.message().c_str());
    return 2;
  }

  const bool fail =
      opt.fail_at_seconds >= 0 && opt.fail_at_seconds < opt.run_for_seconds;
  bool recovered = false;
  ft::RecoveryStats recovery;
  auto sleep_wall = [](double seconds) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6)));
  };
  if (fail && opt.auto_recover) {
    // Crash in place; the heartbeat supervisor must notice the silence and
    // heal the same engine with no help from us.
    sleep_wall(opt.fail_at_seconds);
    const std::int64_t at_crash = engine->sink_tuples();
    runtime->simulate_crash();
    std::printf("crash at +%.1fs: %lld tuples at sink; waiting for the "
                "supervisor\n",
                opt.fail_at_seconds, static_cast<long long>(at_crash));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (runtime->auto_recoveries() >= 1 && runtime->health().is_ok() &&
          !runtime->crashed()) {
        recovered = true;
        break;
      }
      sleep_wall(0.01);
    }
    if (!recovered) {
      std::fprintf(stderr, "self-heal did not complete: %s\n",
                   runtime->health().to_string().c_str());
      return 1;
    }
    std::printf("self-healed: %llu automatic recover(ies), health OK\n",
                static_cast<unsigned long long>(runtime->auto_recoveries()));
    sleep_wall(opt.run_for_seconds - opt.fail_at_seconds);
  } else if (fail) {
    sleep_wall(opt.fail_at_seconds);
    const std::int64_t at_crash = engine->sink_tuples();
    runtime->simulate_crash();
    runtime->stop();
    std::printf("crash at +%.1fs: %lld tuples at sink; restarting from %s\n",
                opt.fail_at_seconds,
                static_cast<long long>(at_crash), opt.rt_dir.c_str());
    runtime.reset();  // detaches its hooks before the engine goes away
    engine = std::make_unique<rt::RtEngine>(rt_demo_graph(), ecfg);
    runtime = std::make_unique<ft::RtRuntime>(engine.get(), cfg);
    recovered = runtime->recover(&recovery).is_ok();
    if (!recovered) {
      std::fprintf(stderr, "recovery failed\n");
      return 1;
    }
    sleep_wall(opt.run_for_seconds - opt.fail_at_seconds);
  } else {
    sleep_wall(opt.run_for_seconds);
  }
  const SimTime uptime = engine->uptime();
  const std::uint64_t durable = runtime->last_durable_epoch();
  if (mode != ft::RtMode::kBaseline) {
    ckpts_completed = runtime->coordinator().checkpoints().size();
  }
  runtime->stop();

  std::printf("\n--- run report (real threads) ---\n");
  std::printf("tuples at sink:          %lld\n",
              static_cast<long long>(engine->sink_tuples()));
  std::printf("checkpoints completed:   %llu\n",
              static_cast<unsigned long long>(ckpts_completed));
  if (mode != ft::RtMode::kBaseline) {
    std::printf("last durable epoch:      %llu\n",
                static_cast<unsigned long long>(durable));
  }
  if (fail && recovered && opt.auto_recover) {
    std::printf("self-heal:               %llu automatic recover(ies), "
                "0 manual\n",
                static_cast<unsigned long long>(runtime->auto_recoveries()));
  } else if (fail && recovered) {
    std::printf("recovery:                %d HAUs in %s (disk %s, replay %s)\n",
                recovery.haus_recovered, recovery.total().to_string().c_str(),
                recovery.disk_io.to_string().c_str(),
                recovery.reconnection.to_string().c_str());
  }

  if (!opt.trace_file.empty()) {
    trace.end_everything(uptime);
    std::ofstream out(opt.trace_file);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_file.c_str());
      return 2;
    }
    trace.write_chrome_json(out);
    std::printf("\nwrote %zu trace events to %s\n", trace.size(),
                opt.trace_file.c_str());
  }
  if (!opt.metrics_file.empty()) {
    std::ofstream out(opt.metrics_file);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", opt.metrics_file.c_str());
      return 2;
    }
    MetricsRegistry::global().write_json(out);
    std::printf("wrote metrics to %s\n", opt.metrics_file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) {
    usage();
    return 2;
  }
  if (opt.help) {
    usage();
    return 0;
  }
  if (!opt.net_faults.empty() && opt.backend_rt) {
    std::fprintf(stderr, "--net-faults only applies to --backend=sim (the rt "
                         "engine has no simulated network)\n");
    return 2;
  }
  if (opt.auto_recover && !opt.backend_rt) {
    std::fprintf(stderr, "--auto-recover only applies to --backend=rt; the "
                         "sim scheme always recovers on --fail-at\n");
    return 2;
  }
  if (opt.backend_rt) return run_rt_backend(opt);
  const SimTime window = SimTime::minutes(opt.window_minutes);
  if (opt.scheme == Scheme::kBaseline && opt.fail_at_seconds >= 0) {
    std::fprintf(stderr,
                 "note: the baseline cannot recover from whole-application "
                 "failures;\n--fail-at is only supported with the MS "
                 "schemes.\n");
    return 2;
  }

  std::printf("mssim: %s under %s, %d checkpoint(s) in %d min (seed %llu)\n",
              app_name(opt.app), scheme_name(opt.scheme), opt.checkpoints,
              opt.window_minutes,
              static_cast<unsigned long long>(opt.seed));

  Experiment exp(opt.app, opt.scheme, opt.checkpoints, window, opt.seed,
                 opt.window_minutes);
  TraceRecorder trace;
  if (!opt.trace_file.empty()) exp.enable_tracing(&trace);
  exp.warmup();

  // Faults start after warmup so the unreliable window is the measured one.
  if (!opt.net_faults.empty()) {
    net::FaultPlan plan;
    if (!parse_net_faults(opt.net_faults, opt.seed, &plan)) return 2;
    exp.cluster().network().set_fault_plan(plan);
    std::printf("unreliable network: %s (seed %llu)\n", opt.net_faults.c_str(),
                static_cast<unsigned long long>(plan.seed));
  }

  bool recovered = false;
  ft::RecoveryStats recovery;
  if (opt.fail_at_seconds >= 0 && exp.ms() != nullptr) {
    exp.sim().schedule_after(SimTime::seconds(opt.fail_at_seconds), [&] {
      failure::FailureInjector injector(&exp.cluster(), &exp.app());
      injector.fail_whole_application();
      exp.ms()->recover_application(exp.spare_nodes(),
                                    [&](ft::RecoveryStats s) {
                                      recovered = true;
                                      recovery = s;
                                    });
    });
  }
  exp.measure();

  std::printf("\n--- run report ---\n");
  std::printf("tuples processed:        %.0f\n", exp.throughput_tuples());
  std::printf("mean latency:            %.1f ms (p99 %s)\n",
              exp.mean_latency_ms(),
              exp.app().latency().percentile(99).to_string().c_str());
  std::printf("checkpoints completed:   %d\n", exp.checkpoints_completed());
  if (exp.ms() != nullptr && !exp.ms()->checkpoints().empty()) {
    const auto& last = exp.ms()->checkpoints().back();
    std::printf("last checkpoint:         %s state in %s\n",
                format_bytes(last.total_declared).c_str(),
                last.total().to_string().c_str());
  }
  if (opt.fail_at_seconds >= 0) {
    if (recovered) {
      std::printf("failure at +%.0fs:        recovered %d HAUs in %s "
                  "(disk %s, reconnect %s)\n",
                  opt.fail_at_seconds, recovery.haus_recovered,
                  recovery.total().to_string().c_str(),
                  recovery.disk_io.to_string().c_str(),
                  recovery.reconnection.to_string().c_str());
    } else {
      std::printf("failure at +%.0fs:        RECOVERY DID NOT COMPLETE\n",
                  opt.fail_at_seconds);
    }
  }
  std::printf("dynamic state now:       %s\n",
              format_bytes(exp.dynamic_state()).c_str());

  const auto& stats = exp.cluster().network().stats();
  std::printf("\nnetwork bytes by category:\n");
  for (int c = 0; c < static_cast<int>(net::MsgCategory::kCount); ++c) {
    const auto cat = static_cast<net::MsgCategory>(c);
    std::printf("  %-11s %s\n", net::msg_category_name(cat),
                format_bytes(stats.bytes_of(cat)).c_str());
  }
  if (stats.dropped > 0 || stats.duplicated > 0) {
    std::printf("\ndropped messages by category (%lld total, %lld duplicate "
                "copies injected):\n",
                static_cast<long long>(stats.dropped),
                static_cast<long long>(stats.duplicated));
    for (int c = 0; c < static_cast<int>(net::MsgCategory::kCount); ++c) {
      const auto cat = static_cast<net::MsgCategory>(c);
      if (stats.dropped_of(cat) == 0) continue;
      std::printf("  %-11s %lld\n", net::msg_category_name(cat),
                  static_cast<long long>(stats.dropped_of(cat)));
    }
  }

  if (!opt.trace_file.empty()) {
    // The run stops mid-flight at the window edge; close any open epoch
    // spans so the exported trace balances.
    trace.end_everything(exp.sim().now());
    std::ofstream out(opt.trace_file);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_file.c_str());
      return 2;
    }
    trace.write_chrome_json(out);
    std::printf("\nwrote %zu trace events to %s\n", trace.size(),
                opt.trace_file.c_str());
  }
  if (!opt.metrics_file.empty()) {
    std::ofstream out(opt.metrics_file);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", opt.metrics_file.c_str());
      return 2;
    }
    MetricsRegistry::global().write_json(out);
    std::printf("wrote metrics to %s\n", opt.metrics_file.c_str());
  }
  return (opt.fail_at_seconds >= 0 && !recovered) ? 1 : 0;
}
