#include "rt/engine.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/log.h"

namespace ms::rt {

namespace fs = std::filesystem;

/// OperatorContext bound to a worker thread.
class RtEngine::RtContext final : public core::OperatorContext {
 public:
  RtContext(RtEngine* engine, Worker* worker) : engine_(engine), worker_(worker) {}

  SimTime now() const override { return engine_->now(); }
  Rng& rng() override { return *worker_->rng; }

  void emit(int out_port, core::Tuple tuple) override {
    MS_CHECK(out_port >= 0 &&
             out_port < static_cast<int>(worker_->out_edges.size()));
    // Stamp lineage the way the simulated HAU does.
    if (tuple.event_time == SimTime::zero()) tuple.event_time = now();
    if (tuple.id == 0) {
      tuple.source_hau = static_cast<std::uint32_t>(worker_->id);
      tuple.source_seq = ++worker_->next_seq;
      tuple.id = core::Tuple::make_id(tuple.source_hau, tuple.source_seq);
    }
    const auto [target, port] =
        worker_->out_edges[static_cast<std::size_t>(out_port)];
    engine_->deliver(target, port, core::StreamItem(std::move(tuple)));
  }

  int num_out_ports() const override {
    return static_cast<int>(worker_->out_edges.size());
  }
  int num_in_ports() const override { return worker_->num_in_ports; }

  void schedule(SimTime delay,
                std::function<void(core::OperatorContext&)> fn) override {
    RtEngine* engine = engine_;
    Worker* worker = worker_;
    engine->schedule_timer(delay, [engine, worker, fn = std::move(fn)] {
      RtContext ctx(engine, worker);
      fn(ctx);
    });
  }

  void charge(SimTime cost) override { (void)cost; }  // kernels really run

  int hau_id() const override { return worker_->id; }

 private:
  RtEngine* engine_;
  Worker* worker_;
};

RtEngine::RtEngine(const core::QueryGraph& graph, RtConfig config)
    : graph_(graph), config_(std::move(config)) {
  const Status st = graph_.validate();
  MS_CHECK_MSG(st.is_ok(), "invalid query network: " + st.to_string());
  Rng seeder(config_.seed);
  workers_.reserve(static_cast<std::size_t>(graph_.num_operators()));
  for (int i = 0; i < graph_.num_operators(); ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    w->op = graph_.op(i).factory();
    w->is_source = graph_.op(i).is_source;
    w->is_sink = graph_.op(i).is_sink;
    w->rng = std::make_unique<Rng>(seeder.fork(static_cast<std::uint64_t>(i)));
    workers_.push_back(std::move(w));
  }
  for (const auto& e : graph_.edges()) {
    workers_[static_cast<std::size_t>(e.from)]->out_edges.emplace_back(e.to,
                                                                       e.in_port);
    workers_[static_cast<std::size_t>(e.to)]->num_in_ports++;
  }
  for (auto& w : workers_) {
    w->token_seen.assign(static_cast<std::size_t>(w->num_in_ports), false);
  }
  helpers_ = std::make_unique<ThreadPool>(std::max<std::size_t>(
      1, config_.helper_threads));
  if (!config_.checkpoint_dir.empty()) {
    fs::create_directories(config_.checkpoint_dir);
  }
}

RtEngine::~RtEngine() {
  if (running_.load()) stop();
}

SimTime RtEngine::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - started_at_;
  return SimTime::nanos(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

SimTime RtEngine::uptime() const { return now(); }

void RtEngine::start() {
  MS_CHECK(!running_.load());
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true);
  stopping_.store(false);
  timer_thread_ = std::thread([this] { timer_loop(); });
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_loop(*worker); });
  }
  // Open operators (sources arm their timers) after workers exist so early
  // emissions have somewhere to go.
  for (auto& w : workers_) {
    RtContext ctx(this, w.get());
    w->op->on_open(ctx);
  }
}

void RtEngine::stop() {
  if (!running_.load()) return;
  // Phase 1: stop timers so sources quiesce.
  {
    std::scoped_lock lock(timer_mu_);
    stopping_.store(true);
    timers_.clear();
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Phase 2: drain queues in topological order so upstream emissions land
  // before a downstream worker shuts down.
  for (const int v : graph_.topological_order()) {
    Worker& w = *workers_[static_cast<std::size_t>(v)];
    std::unique_lock lock(w.mu);
    w.cv_push.wait(lock, [&w] { return w.queue.empty(); });
  }
  // Phase 3: shut workers down.
  running_.store(false);
  for (auto& w : workers_) w->cv_pop.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  helpers_->wait_idle();
}

void RtEngine::deliver(int op, int in_port, core::StreamItem item) {
  Worker& w = *workers_[static_cast<std::size_t>(op)];
  std::unique_lock lock(w.mu);
  w.cv_push.wait(lock, [this, &w] {
    return w.queue.size() < config_.queue_capacity || !running_.load();
  });
  w.queue.push_back(QueueItem{in_port, std::move(item)});
  w.cv_pop.notify_one();
}

void RtEngine::worker_loop(Worker& w) {
  RtContext ctx(this, &w);
  for (;;) {
    QueueItem qi;
    {
      std::unique_lock lock(w.mu);
      w.cv_pop.wait(lock, [this, &w] {
        return !w.queue.empty() || !running_.load();
      });
      if (w.queue.empty()) return;  // stopped and drained
      qi = std::move(w.queue.front());
      w.queue.pop_front();
      w.cv_push.notify_all();
    }
    if (const auto* token = std::get_if<core::Token>(&qi.item)) {
      // Token alignment. The bounded queues are FIFO per edge, so marking
      // per-port arrival gives the same boundary as head-blocking: every
      // pre-token tuple on that edge has already been dequeued.
      if (w.num_in_ports > 0) {
        MS_CHECK_MSG(!w.token_seen[static_cast<std::size_t>(qi.in_port)],
                     "duplicate token on one edge within an epoch");
        w.token_seen[static_cast<std::size_t>(qi.in_port)] = true;
      }
      if (++w.tokens == std::max(1, w.num_in_ports)) {
        std::fill(w.token_seen.begin(), w.token_seen.end(), false);
        w.tokens = 0;
        // Snapshot state on the worker thread (fast, in-memory), write on a
        // helper (the fork/copy-on-write analogue).
        BinaryWriter writer;
        w.op->serialize_state(writer);
        auto blob = std::make_shared<std::vector<std::uint8_t>>(writer.take());
        // Forward the token before resuming normal work.
        for (const auto& [target, port] : w.out_edges) {
          deliver(target, port, core::StreamItem(*token));
        }
        const int id = w.id;
        helpers_->submit([this, id, blob] {
          const fs::path path =
              fs::path(config_.checkpoint_dir) /
              ("op_" + std::to_string(id) + ".ckpt");
          std::ofstream out(path, std::ios::binary | std::ios::trunc);
          out.write(reinterpret_cast<const char*>(blob->data()),
                    static_cast<std::streamsize>(blob->size()));
          out.close();
          std::scoped_lock lock(ckpt_mu_);
          ckpt_sizes_[id] = blob->size();
          if (--ckpt_remaining_ == 0) ckpt_cv_.notify_all();
        });
      }
      continue;
    }
    auto& tuple = std::get<core::Tuple>(qi.item);
    w.op->process(qi.in_port, tuple, ctx);
    w.processed.fetch_add(1, std::memory_order_relaxed);
    if (w.is_sink) sink_tuples_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::map<int, std::uint64_t> RtEngine::checkpoint() {
  MS_CHECK(running_.load());
  MS_CHECK_MSG(!config_.checkpoint_dir.empty(),
               "RtEngine built without a checkpoint directory");
  {
    std::scoped_lock lock(ckpt_mu_);
    MS_CHECK_MSG(ckpt_remaining_ == 0, "checkpoint already in progress");
    ckpt_remaining_ = graph_.num_operators();
    ckpt_sizes_.clear();
  }
  const core::Token token{++ckpt_epoch_, /*one_hop=*/false};
  // Sources have no in-edges: inject the token directly into their queues;
  // it trickles down the graph from there.
  for (auto& w : workers_) {
    if (w->num_in_ports == 0) deliver(w->id, 0, core::StreamItem(token));
  }
  std::unique_lock lock(ckpt_mu_);
  ckpt_cv_.wait(lock, [this] { return ckpt_remaining_ == 0; });
  return ckpt_sizes_;
}

void RtEngine::restore() {
  MS_CHECK(!running_.load());
  for (auto& w : workers_) {
    const fs::path path = fs::path(config_.checkpoint_dir) /
                          ("op_" + std::to_string(w->id) + ".ckpt");
    std::ifstream in(path, std::ios::binary);
    MS_CHECK_MSG(in.good(), "missing checkpoint file: " + path.string());
    std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
    w->op->clear_state();
    if (!blob.empty()) {
      BinaryReader reader(blob);
      w->op->deserialize_state(reader);
    }
  }
}

std::int64_t RtEngine::tuples_processed(int op) const {
  return workers_[static_cast<std::size_t>(op)]->processed.load();
}

void RtEngine::timer_loop() {
  std::unique_lock lock(timer_mu_);
  while (!stopping_.load()) {
    if (timers_.empty()) {
      timer_cv_.wait(lock,
                     [this] { return stopping_.load() || !timers_.empty(); });
      continue;
    }
    const auto due = timers_.front().at;  // heap top is the earliest timer
    if (std::chrono::steady_clock::now() < due) {
      // Wakes early if a new (possibly earlier) timer arrives or we stop;
      // the loop re-examines the heap top either way.
      timer_cv_.wait_until(lock, due);
      continue;
    }
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>());
    Timer next = std::move(timers_.back());
    timers_.pop_back();
    // Run outside the lock; the callback may schedule more timers.
    lock.unlock();
    next.fn();
    lock.lock();
  }
}

void RtEngine::schedule_timer(SimTime delay, std::function<void()> fn) {
  {
    std::scoped_lock lock(timer_mu_);
    if (stopping_.load()) return;
    timers_.push_back(Timer{
        std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(std::max<std::int64_t>(0, delay.ns())),
        timer_seq_++, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
  }
  timer_cv_.notify_all();
}

}  // namespace ms::rt
