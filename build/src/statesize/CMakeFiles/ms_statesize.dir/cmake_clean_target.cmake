file(REMOVE_RECURSE
  "libms_statesize.a"
)
