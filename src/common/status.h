// Minimal error-handling vocabulary: Status for operations that can fail
// without a value, Result<T> for operations that produce a value or an error.
// Exceptions are reserved for programming errors (MS_CHECK); expected runtime
// failures (a failed node, a missing checkpoint) travel through these types.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace ms {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kUnavailable,     // target node/service is down
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,
  kAborted,         // operation rejected by an explicit safety interlock
  kInternal,
  kDataLoss,        // durable bytes failed verification (checksum/length):
                    // unrecoverable corruption, distinct from a transient
                    // kUnavailable read error — retrying will not help
};

const char* status_code_name(StatusCode c);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status not_found(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status data_loss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. `value()` on an error aborts (programming error).
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}          // NOLINT(google-explicit-constructor)

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    check_ok();
    return std::get<T>(v_);
  }
  T& value() & {
    check_ok();
    return std::get<T>(v_);
  }
  T&& value() && {
    check_ok();
    return std::get<T>(std::move(v_));
  }
  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

 private:
  void check_ok() const {
    if (!is_ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(v_).to_string().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> v_;
};

namespace internal {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& extra);
}  // namespace internal

}  // namespace ms

/// Invariant check: aborts with location on violation. Always on — the cost
/// is negligible next to the simulation work and silent corruption is worse.
#define MS_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) ::ms::internal::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define MS_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) ::ms::internal::check_failed(__FILE__, __LINE__, #expr, (msg)); \
  } while (0)
