file(REMOVE_RECURSE
  "CMakeFiles/ablation_token_overhead.dir/ablation_token_overhead.cc.o"
  "CMakeFiles/ablation_token_overhead.dir/ablation_token_overhead.cc.o.d"
  "ablation_token_overhead"
  "ablation_token_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_token_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
