# Smoke test: run a short simulation with tracing on, then validate the
# exported Chrome trace with mstrace --check. Driven from tools/CMakeLists
# as ctest `tools.trace_smoke`.
set(trace_file "${WORK_DIR}/trace_smoke.json")

execute_process(
  COMMAND "${MSSIM}" --app tmi --scheme ms-src+ap --checkpoints 2 --window 2
          --trace "${trace_file}"
  RESULT_VARIABLE sim_rc
  OUTPUT_VARIABLE sim_out
  ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
  message(FATAL_ERROR "mssim failed (rc=${sim_rc}):\n${sim_out}\n${sim_err}")
endif()

execute_process(
  COMMAND "${MSTRACE}" --check "${trace_file}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR
          "mstrace --check failed (rc=${check_rc}):\n${check_out}\n${check_err}")
endif()

# The summary must see at least one checkpoint epoch in the capture.
execute_process(
  COMMAND "${MSTRACE}" "${trace_file}"
  RESULT_VARIABLE sum_rc
  OUTPUT_VARIABLE sum_out
  ERROR_VARIABLE sum_err)
if(NOT sum_rc EQUAL 0)
  message(FATAL_ERROR "mstrace summary failed:\n${sum_out}\n${sum_err}")
endif()
if(NOT sum_out MATCHES "checkpoint epoch [0-9]")
  message(FATAL_ERROR "trace summary reports no checkpoint epochs:\n${sum_out}")
endif()
