file(REMOVE_RECURSE
  "CMakeFiles/ablation_delta_checkpoint.dir/ablation_delta_checkpoint.cc.o"
  "CMakeFiles/ablation_delta_checkpoint.dir/ablation_delta_checkpoint.cc.o.d"
  "ablation_delta_checkpoint"
  "ablation_delta_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
