#include "rt/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "../testing/test_ops.h"

namespace ms::rt {
namespace {

using ms::testing::chain_graph;
using ms::testing::RecordingSink;

RtConfig config_with_dir(const std::string& name) {
  RtConfig cfg;
  cfg.checkpoint_dir =
      (std::filesystem::temp_directory_path() / name).string();
  return cfg;
}

TEST(RtEngineTest, TuplesFlowOnRealThreads) {
  RtEngine engine(chain_graph(2, SimTime::millis(2)), RtConfig{});
  engine.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  engine.stop();
  EXPECT_GT(engine.sink_tuples(), 50);
  // Chain conservation: relay processed at least as many as the sink saw.
  EXPECT_GE(engine.tuples_processed(1), engine.sink_tuples());
}

TEST(RtEngineTest, ValuesArriveInOrderExactlyOnce) {
  RtEngine engine(chain_graph(1, SimTime::millis(1)), RtConfig{});
  engine.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  engine.stop();
  const auto& sink = static_cast<RecordingSink&>(engine.op(2));
  ASSERT_GT(sink.values.size(), 20u);
  for (std::size_t i = 0; i < sink.values.size(); ++i) {
    EXPECT_EQ(sink.values[i], static_cast<std::int64_t>(i));
  }
}

TEST(RtEngineTest, CheckpointWritesAllOperators) {
  RtEngine engine(chain_graph(2, SimTime::millis(1)),
                  config_with_dir("ms_rt_ckpt_a"));
  engine.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto sizes = engine.checkpoint();
  engine.stop();
  EXPECT_EQ(sizes.size(), 4u);
  for (const auto& [op, size] : sizes) {
    const auto path = std::filesystem::path(
        config_with_dir("ms_rt_ckpt_a").checkpoint_dir) /
        ("op_" + std::to_string(op) + ".ckpt");
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_EQ(std::filesystem::file_size(path), size);
  }
}

TEST(RtEngineTest, ProcessingContinuesDuringCheckpoint) {
  RtEngine engine(chain_graph(2, SimTime::millis(1)),
                  config_with_dir("ms_rt_ckpt_b"));
  engine.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto before = engine.sink_tuples();
  engine.checkpoint();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  engine.stop();
  EXPECT_GT(engine.sink_tuples(), before + 20);
}

TEST(RtEngineTest, RestoreRoundTripsState) {
  const RtConfig cfg = config_with_dir("ms_rt_ckpt_c");
  RtEngine engine(chain_graph(1, SimTime::millis(1)), cfg);
  engine.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  engine.checkpoint();
  engine.stop();
  const auto& sink = static_cast<const RecordingSink&>(engine.op(2));
  const std::size_t at_checkpoint_upper = sink.values.size();

  RtEngine fresh(chain_graph(1, SimTime::millis(1)), cfg);
  fresh.restore();
  auto& restored_sink = static_cast<RecordingSink&>(fresh.op(2));
  // The restored sink replays a prefix of what the original saw.
  EXPECT_FALSE(restored_sink.values.empty());
  EXPECT_LE(restored_sink.values.size(), at_checkpoint_upper);
  for (std::size_t i = 0; i < restored_sink.values.size(); ++i) {
    EXPECT_EQ(restored_sink.values[i], static_cast<std::int64_t>(i));
  }
}

TEST(RtEngineTest, MultipleCheckpointsSequentially) {
  RtEngine engine(chain_graph(1, SimTime::millis(1)),
                  config_with_dir("ms_rt_ckpt_d"));
  engine.start();
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const auto sizes = engine.checkpoint();
    EXPECT_EQ(sizes.size(), 3u);
  }
  engine.stop();
  SUCCEED();
}

TEST(RtEngineTest, StopIsIdempotent) {
  RtEngine engine(chain_graph(1, SimTime::millis(5)), RtConfig{});
  engine.start();
  engine.stop();
  engine.stop();
  SUCCEED();
}

}  // namespace
}  // namespace ms::rt
