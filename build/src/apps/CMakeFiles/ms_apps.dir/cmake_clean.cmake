file(REMOVE_RECURSE
  "CMakeFiles/ms_apps.dir/bcp.cc.o"
  "CMakeFiles/ms_apps.dir/bcp.cc.o.d"
  "CMakeFiles/ms_apps.dir/kernels/blob_count.cc.o"
  "CMakeFiles/ms_apps.dir/kernels/blob_count.cc.o.d"
  "CMakeFiles/ms_apps.dir/kernels/kmeans.cc.o"
  "CMakeFiles/ms_apps.dir/kernels/kmeans.cc.o.d"
  "CMakeFiles/ms_apps.dir/kernels/svm.cc.o"
  "CMakeFiles/ms_apps.dir/kernels/svm.cc.o.d"
  "CMakeFiles/ms_apps.dir/signalguru.cc.o"
  "CMakeFiles/ms_apps.dir/signalguru.cc.o.d"
  "CMakeFiles/ms_apps.dir/tmi.cc.o"
  "CMakeFiles/ms_apps.dir/tmi.cc.o.d"
  "libms_apps.a"
  "libms_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
