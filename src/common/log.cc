#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace ms {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s %s] %s\n", level_name(level), tag, msg);
}

}  // namespace ms
