// Burst-failure demo — the paper's headline scenario end to end:
//
// The TMI application runs on 55 nodes of a simulated commodity data center
// under MS-src+ap+aa with automatic failure detection. A failure trace
// generated from the Google data-center model (Table I) is injected; when a
// rack-correlated burst takes the application down, the controller detects
// it (source pings time out), restarts every HAU on spare nodes, rolls the
// application back to its most recent checkpoint, and the sources replay
// their preserved logs. The baseline scheme, run side by side, cannot
// recover from the same burst: the preservation buffers it needs died with
// the upstream nodes.
#include <cstdio>

#include "apps/tmi.h"
#include "core/application.h"
#include "failure/afn100.h"
#include "failure/burst.h"
#include "ft/meteor_shower.h"

int main() {
  using namespace ms;

  std::printf("=== Burst failure and automatic recovery (TMI, 55 HAUs) "
              "===\n\n");

  sim::Simulation sim;
  core::ClusterParams cp;
  cp.network.num_nodes = 111;  // 55 app + 55 spares + storage
  cp.network.nodes_per_rack = 55;  // the application fills one rack
  core::Cluster cluster(&sim, cp);

  apps::TmiConfig cfg;
  cfg.window = SimTime::seconds(90);
  cfg.records_per_second = 20;
  core::Application app(&cluster, apps::build_tmi(cfg));
  app.deploy();

  ft::FtParams params;
  params.periodic = true;
  params.checkpoint_period = SimTime::seconds(60);
  params.ping_period = SimTime::millis(500);
  ft::MsScheme scheme(&app, params, ft::MsVariant::kSrcAp);
  scheme.attach();
  std::vector<net::NodeId> spares;
  for (net::NodeId n = 55; n < 110; ++n) spares.push_back(n);
  scheme.enable_failure_detection(spares);
  app.start();
  scheme.start();

  // Rack burst at t=150 s: the whole application rack goes dark, exactly
  // the correlated failure mode of Sec. II-B1 ("a rack failure can
  // immediately disconnect 80 nodes").
  failure::FailureEvent burst;
  burst.kind = failure::FailureEvent::Kind::kRackBurst;
  burst.at = SimTime::seconds(150);
  for (net::NodeId n = 0; n < 55; ++n) burst.nodes.push_back(n);
  burst.repair_after = SimTime::minutes(90);  // 1-6 h in the paper
  failure::FailureInjector injector(&cluster, &app);
  injector.schedule({burst});

  sim.run_until(SimTime::seconds(140));
  std::printf("t=140s: %zu checkpoints completed, sink has %lld tuples\n",
              scheme.checkpoints().size(),
              static_cast<long long>(app.sink_tuple_count()));

  sim.run_until(SimTime::seconds(150) + SimTime::millis(10));
  int down = 0;
  for (int i = 0; i < app.num_haus(); ++i) {
    if (app.hau(i).failed()) ++down;
  }
  std::printf("t=150.01s: rack burst hit — %d of %d HAUs down (0 means the "
              "controller already\n  restarted them on spares; the state "
              "reload continues in the background)\n",
              down, app.num_haus());

  sim.run_until(SimTime::seconds(400));
  if (scheme.recoveries().empty()) {
    std::printf("no recovery happened — unexpected\n");
    return 1;
  }
  const auto& rec = scheme.recoveries().front();
  std::printf("controller detected the failure and recovered %d HAUs on "
              "spare nodes in %s\n  (disk I/O %s, reconnection %s, state "
              "read %s)\n",
              rec.haus_recovered, rec.total().to_string().c_str(),
              rec.disk_io.to_string().c_str(),
              rec.reconnection.to_string().c_str(),
              format_bytes(rec.bytes_read).c_str());

  bool all_up = true;
  for (int i = 0; i < app.num_haus(); ++i) all_up &= !app.hau(i).failed();
  std::printf("t=400s: all HAUs alive: %s; sink has %lld tuples and "
              "counting\n",
              all_up ? "yes" : "NO",
              static_cast<long long>(app.sink_tuple_count()));

  std::printf("\nFor scale: the Google-model failure trace for this cluster "
              "over one year\nwould contain ~%.0f node failures "
              "(AFN100 %.0f), ~10%% of them in correlated bursts\nlike the "
              "one above — the case the baseline cannot survive.\n",
              failure::FailureModel::google().total_afn100 / 100.0 * 111,
              failure::FailureModel::google().total_afn100);
  return all_up ? 0 : 1;
}
