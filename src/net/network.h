// Flow-level network model with per-NIC contention.
//
// A message from A to B is serialized on A's transmit NIC (FIFO), crosses the
// fabric with rack-dependent latency, and is clocked into B's receive NIC
// (FIFO at NIC bandwidth). This captures the two contention points that
// matter for the paper's experiments: fan-in at busy downstream HAUs and the
// storage node's NIC during checkpoints. Delivery is per-sender in-order
// (TCP-like); messages to or from a dead node are dropped at delivery time.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace ms::net {

enum class MsgCategory : int {
  kData = 0,        // stream tuples
  kToken,           // checkpoint tokens (embedded markers / 1-hop tokens)
  kControl,         // controller commands, state-size reports, pings
  kAck,             // input-preservation acknowledgments
  kCheckpoint,      // checkpointed state to/from storage
  kPreserve,        // preserved tuples to storage (source preservation)
  kReplay,          // replayed tuples during recovery
  kCount,
};

const char* msg_category_name(MsgCategory c);

struct NetworkStats {
  std::array<std::int64_t, static_cast<std::size_t>(MsgCategory::kCount)> messages{};
  std::array<std::int64_t, static_cast<std::size_t>(MsgCategory::kCount)> bytes{};
  std::int64_t dropped = 0;

  std::int64_t total_bytes() const;
  std::int64_t bytes_of(MsgCategory c) const {
    return bytes[static_cast<std::size_t>(c)];
  }
};

class Network {
 public:
  Network(sim::Simulation* sim, const Topology* topo);

  /// Deliver `deliver` on the destination after transfer of `size` bytes.
  /// If either endpoint is dead at send or delivery time, the message is
  /// dropped (and `on_dropped`, if given, runs instead at the same instant).
  void send(NodeId from, NodeId to, Bytes size, MsgCategory category,
            std::function<void()> deliver,
            std::function<void()> on_dropped = nullptr);

  void set_alive(NodeId n, bool alive);
  bool alive(NodeId n) const;

  /// Revive bookkeeping: clears NIC backlogs of a node (used on restart).
  void reset_node(NodeId n);

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  const Topology& topology() const { return *topo_; }
  sim::Simulation& simulation() { return *sim_; }

 private:
  sim::Simulation* sim_;
  const Topology* topo_;
  std::vector<bool> alive_;
  std::vector<SimTime> tx_busy_until_;
  std::vector<SimTime> rx_busy_until_;
  NetworkStats stats_;
};

}  // namespace ms::net
