// Execution-backend seam for the fault-tolerance protocol.
//
// The Meteor Shower controller logic — epoch serialization, wedge
// abandonment, per-unit report aggregation, completion detection, periodic
// initiation — is execution-agnostic: it needs a clock, a timer, a unit
// roster, and three protocol actions (start an epoch, commit a completed
// epoch, note an abandoned one). This interface is that contract.
//
// Two adapters exist:
//   - SimRuntime (ft/sim_runtime.h): the discrete-event stack. Timers are
//     simulation events, units are HAUs, epoch actions fan out over the
//     simulated network. Behaviour is bit-for-bit what MsScheme did before
//     the seam existed; the tier-1 sim tests pin that.
//   - RtRuntime (ft/rt_runtime.h): real threads over rt::RtEngine. Timers
//     run on the engine's timer thread, units are operator workers, epoch
//     actions inject checkpoint tokens and commit epoch directories via a
//     rename-into-place manifest.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"

namespace ms::ft {

/// How a unit takes its snapshot once its tokens align.
enum class EpochMode {
  /// Serialize and write before forwarding tokens (MS-src, baseline).
  kSync,
  /// Fork off a helper, forward tokens immediately, write behind the
  /// dataflow (MS-src+ap, +aa).
  kAsync,
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  // --- unit roster ---
  virtual int num_units() const = 0;
  virtual bool unit_is_source(int unit) const = 0;
  virtual bool unit_alive(int unit) const = 0;

  // --- clock & timers ---
  virtual SimTime now() const = 0;
  virtual void schedule_after(SimTime delay, std::function<void()> fn) = 0;

  // --- protocol actions (coordinator -> backend) ---
  /// Fan the epoch-begin command out to the participating units: send the
  /// checkpoint command / inject tokens per the scheme variant.
  virtual void start_epoch(std::uint64_t epoch) = 0;
  /// Every unit reported for `epoch`: garbage-collect the previous epoch's
  /// stored state and let sources truncate their preserved logs up to the
  /// epoch boundary.
  virtual void commit_epoch(std::uint64_t epoch) = 0;
  /// `epoch` was abandoned before completion (wedged past the stale window,
  /// or a unit's stable-storage write failed definitively).
  virtual void abandon_epoch(std::uint64_t epoch) { (void)epoch; }
  /// Re-issue the epoch-begin command for an epoch still in flight: on an
  /// unreliable network a token or completion report may have been lost,
  /// and units handle the re-delivery idempotently (re-forwarding tokens /
  /// re-sending stored reports instead of re-checkpointing). Default no-op:
  /// backends with reliable in-process transport never need it.
  virtual void retransmit_epoch(std::uint64_t epoch) { (void)epoch; }
};

}  // namespace ms::ft
