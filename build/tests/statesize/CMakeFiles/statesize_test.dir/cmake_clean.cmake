file(REMOVE_RECURSE
  "CMakeFiles/statesize_test.dir/state_size_test.cc.o"
  "CMakeFiles/statesize_test.dir/state_size_test.cc.o.d"
  "CMakeFiles/statesize_test.dir/turning_point_test.cc.o"
  "CMakeFiles/statesize_test.dir/turning_point_test.cc.o.d"
  "statesize_test"
  "statesize_test.pdb"
  "statesize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statesize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
