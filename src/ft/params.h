// Tunables shared by all fault-tolerance schemes. Defaults follow the paper
// where it gives numbers (200 s checkpoint period, 50 MB preservation buffer,
// 20 % relaxation factor) and plausible 2012 commodity-hardware rates
// elsewhere; every knob is sweepable by the ablation benches.
#pragma once

#include "common/units.h"

namespace ms::ft {

struct FtParams {
  // --- checkpointing ---
  /// Period between application (or, for the baseline, per-HAU) checkpoints.
  SimTime checkpoint_period = SimTime::seconds(200);
  /// If false, no periodic schedule runs; benches trigger explicitly.
  bool periodic = true;
  /// CPU serialization throughput when snapshotting operator state.
  double serialize_bandwidth = 400e6;
  /// CPU deserialization + data-structure rebuild throughput (recovery
  /// phase 3).
  double deserialize_bandwidth = 500e6;
  /// Cost of forking the checkpoint helper process (MS-src+ap): the parent
  /// is blocked only for this long.
  SimTime fork_cost = SimTime::millis(15);
  /// Copy-on-write tax: processing cost multiplier is (1 + cow_tax) while an
  /// asynchronous checkpoint drains.
  double cow_tax = 0.06;
  /// Delta checkpointing (paper Sec. V: "delta-checkpointing complement[s]
  /// Meteor Shower's application-aware checkpointing and could be applied
  /// jointly"): write only the state changed since the previous checkpoint;
  /// recovery still reads the full reconstructed state.
  bool delta_checkpoints = false;
  /// rt delta chains: compact with a full snapshot after this many
  /// consecutive delta epochs...
  int delta_compact_every = 4;
  /// ...or earlier, once the chain's accumulated delta bytes exceed this
  /// multiple of the base snapshot's bytes (caps recovery read
  /// amplification).
  double delta_compact_ratio = 1.5;
  /// Also mirror the checkpoint to the node's local disk (the paper's
  /// "optionally saved again in the local disks"). Not on the completion
  /// critical path.
  bool save_local_copy = true;

  // --- adaptive cadence (CadenceController, Khaos-style) ---
  /// Continuously retune the checkpoint interval from observed checkpoint
  /// cost vs. the configured failure rate and recovery budget, instead of
  /// firing at the fixed checkpoint_period. Seeds from checkpoint_period.
  bool adaptive_cadence = false;
  /// Assumed mean time between failures — the failure-rate input to the
  /// Young/Daly optimum sqrt(2 * cost * MTBF).
  SimTime mtbf = SimTime::minutes(60);
  /// Recovery-time budget: the interval is additionally capped so the
  /// expected replay backlog (≈ one interval of input, replayed at
  /// replay_speedup) stays within it. Zero disables the cap.
  SimTime recovery_budget = SimTime::seconds(30);
  /// EWMA weight of the newest checkpoint-cost observation.
  double cadence_smoothing = 0.3;
  /// Estimate MTBF live from observed failure verdicts (EWMA of
  /// inter-failure gaps fed by FailureDetector verdicts) instead of the
  /// configured `mtbf` constant. Until the first gap is observed the
  /// configured value still seeds the optimum.
  bool cadence_live_mtbf = false;
  /// Clamp on the retuned interval, as multiples of checkpoint_period
  /// (factors keep the clamp scale-free: sim sweeps run minutes-long
  /// periods, rt demos run milliseconds).
  double cadence_min_factor = 0.125;
  double cadence_max_factor = 8.0;

  // --- input preservation (baseline) ---
  Bytes preservation_buffer = 50_MB;
  /// Per-saved-tuple CPU: a fixed part plus a fraction of the emitting
  /// operator's own per-tuple cost. The fractional form reflects that
  /// copy/serialize cost scales with the tuple complexity the operator
  /// already pays for, and is the calibrated per-application knob behind
  /// the paper's 24–51 % source-preservation gains (see DESIGN.md).
  SimTime preserve_base_cost = SimTime::micros(10);
  double preserve_cost_fraction = 0.35;
  /// The HAU stalls when its spill disk backlog exceeds this.
  SimTime spill_backlog_limit = SimTime::seconds(2);

  // --- source preservation (Meteor Shower) ---
  /// Sources batch preserved tuples before the stable-storage append; a
  /// batch is flushed when it reaches this size or age.
  Bytes source_batch_bytes = 256_KB;
  SimTime source_batch_interval = SimTime::millis(20);

  // --- failure detection ---
  SimTime ping_period = SimTime::seconds(1);
  /// Missed-response window after which a node is deemed failed.
  SimTime ping_timeout = SimTime::seconds(3);
  /// Consecutive missed heartbeats before the detector issues a failure
  /// verdict. The first miss only marks the unit *suspect*; a heartbeat
  /// arriving before the threshold exonerates it (counted as a false
  /// positive) instead of triggering recovery.
  int suspicion_threshold = 3;
  /// While a checkpoint epoch is in flight, the coordinator re-issues the
  /// checkpoint command (and HAUs re-forward their tokens) every this often,
  /// so a lost token or report delays the epoch instead of wedging it.
  /// Zero disables retransmission.
  SimTime token_retransmit_timeout = SimTime::seconds(2);

  // --- self-healing (rt supervisor) ---
  /// Cadence at which live operators publish heartbeats and the supervisor
  /// scans the detector.
  SimTime heartbeat_period = SimTime::millis(25);
  /// A unit whose last heartbeat is older than this accrues one miss per
  /// supervisor scan.
  SimTime heartbeat_timeout = SimTime::millis(200);
  /// Bounded auto-recovery: retries per verdict, with exponential backoff
  /// starting at `self_heal_backoff`.
  int self_heal_max_attempts = 5;
  SimTime self_heal_backoff = SimTime::millis(50);
  /// Crash-loop quarantine: this many crashes within `crash_loop_window`
  /// of the previous heal puts the runtime in degraded mode (health()
  /// returns a non-OK Status and the supervisor stops resurrecting it).
  int crash_loop_threshold = 3;
  SimTime crash_loop_window = SimTime::seconds(2);

  // --- durable-state integrity (rt runtime) ---
  /// Full epochs retained beyond the live chain as corruption-fallback
  /// rungs: when the chain tip fails verification, recovery falls back to
  /// the newest verifiable earlier epoch instead of losing everything.
  /// Source logs are truncated only to the oldest retained epoch's boundary
  /// so a fallback still replays with full fidelity. Zero disables rungs
  /// (corrupt tip = typed kDataLoss).
  int retain_fallback_epochs = 1;

  // --- shared-storage retry ---
  /// Bounded retry of shared-storage puts/gets on transient (kUnavailable)
  /// failures — a brief storage outage should not abort a checkpoint epoch
  /// or wedge a recovery read. 1 = no retry.
  int storage_retry_attempts = 3;
  /// Backoff before the first retry; doubles per attempt.
  SimTime storage_retry_backoff = SimTime::millis(100);

  // --- recovery ---
  /// Phase 1: reload operator binaries/libraries on the recovery node.
  SimTime operator_reload_cost = SimTime::millis(120);
  /// Phase 4: per-HAU reconnection handshake payload.
  Bytes reconnect_message_size = 512;
  /// Phase 4: per-connection (out-edge) re-establishment cost — socket
  /// setup, buffer allocation, subscription handshake.
  SimTime reconnect_per_edge = SimTime::millis(25);
  /// Replayed tuples are processed faster than usual to catch up (paper
  /// assumption); sources emit replay at this multiple of live rate.
  double replay_speedup = 4.0;
  /// The recovery watchdog scans at this period for HAUs that died *during*
  /// the recovery (a second burst): their per-HAU chains and phase-4
  /// handshakes are abandoned so the barrier still closes, and a follow-up
  /// recovery is queued for them.
  SimTime recovery_watchdog_period = SimTime::millis(100);

  // --- application-aware checkpointing (MS-src+ap+aa) ---
  /// Local state-size sampling period at each HAU.
  SimTime state_sample_period = SimTime::seconds(2);
  /// An HAU is dynamic if min(state) < dynamic_threshold * avg(state) over
  /// the profiling window.
  double dynamic_threshold = 0.5;
  /// Number of profiling periods observed (observation takes one more).
  int profile_periods = 2;
  /// Cadence of the observation/profiling phases. Zero = use
  /// checkpoint_period. Profiling does not need to pace itself by the
  /// checkpoint period — it only has to see a few state cycles.
  SimTime profile_period = SimTime::zero();
  /// Minimum relaxation factor alpha = (smax - smin) / smin.
  double relaxation_min = 0.2;
  /// Fire plain periodic checkpoints while observing/profiling (off for
  /// benchmark runs that must keep the warmup checkpoint-free).
  bool checkpoint_during_profiling = true;
  /// Close the observation phase this long after the end-observation
  /// commands even if reports are missing (an HAU that died after the
  /// command was sent can never report; without the timeout the profiling
  /// pipeline would wait forever).
  SimTime aa_observation_timeout = SimTime::seconds(5);
};

}  // namespace ms::ft
