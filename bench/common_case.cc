#include "common_case.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "ascii_chart.h"

namespace ms::bench {
namespace {

std::string cache_path(AppKind app, bool quick) {
  return std::string("ms_common_case_") + app_name(app) +
         (quick ? "_quick" : "") + ".cache";
}

bool load_cache(AppKind app, bool quick, int max_checkpoints,
                CommonCaseSweep* sweep) {
  std::ifstream in(cache_path(app, quick));
  if (!in.good()) return false;
  int version = 0;
  in >> version;
  if (version != 1) return false;
  for (const Scheme scheme : kAllSchemes) {
    for (int k = 0; k <= max_checkpoints; ++k) {
      CommonCaseCell cell;
      if (!(in >> cell.throughput >> cell.latency_ms >> cell.checkpoints)) {
        return false;
      }
      sweep->cells[scheme][k] = cell;
    }
  }
  sweep->baseline_zero_throughput =
      sweep->cells[Scheme::kBaseline][0].throughput;
  sweep->baseline_zero_latency_ms =
      sweep->cells[Scheme::kBaseline][0].latency_ms;
  return true;
}

void store_cache(AppKind app, bool quick, int max_checkpoints,
                 const CommonCaseSweep& sweep) {
  std::ofstream out(cache_path(app, quick), std::ios::trunc);
  out << 1 << "\n";
  for (const Scheme scheme : kAllSchemes) {
    for (int k = 0; k <= max_checkpoints; ++k) {
      const auto& cell = sweep.cells.at(scheme).at(k);
      out << cell.throughput << " " << cell.latency_ms << " "
          << cell.checkpoints << "\n";
    }
  }
}

}  // namespace

CommonCaseSweep run_common_case_sweep(AppKind app, bool quick,
                                      int max_checkpoints) {
  CommonCaseSweep sweep;
  if (load_cache(app, quick, max_checkpoints, &sweep)) {
    std::fprintf(stderr,
                 "  %s: reusing the sweep measured by the sibling bench "
                 "(%s)\n",
                 app_name(app), cache_path(app, quick).c_str());
    return sweep;
  }
  const SimTime window = quick ? SimTime::minutes(2) : SimTime::minutes(10);
  const int tmi_minutes = quick ? 2 : 10;
  for (const Scheme scheme : kAllSchemes) {
    for (int k = 0; k <= max_checkpoints; ++k) {
      Experiment exp(app, scheme, k, window, 0x9d2cULL, tmi_minutes);
      exp.warmup();
      exp.measure();
      CommonCaseCell cell;
      cell.throughput = exp.throughput_tuples();
      cell.latency_ms = exp.mean_latency_ms();
      cell.checkpoints = exp.checkpoints_completed();
      sweep.cells[scheme][k] = cell;
      std::fprintf(stderr, "  %-11s %-13s k=%d  tput=%-9.0f lat=%-8.1fms ckpts=%d\n",
                   app_name(app), scheme_name(scheme), k, cell.throughput,
                   cell.latency_ms, cell.checkpoints);
    }
  }
  sweep.baseline_zero_throughput =
      sweep.cells[Scheme::kBaseline][0].throughput;
  sweep.baseline_zero_latency_ms =
      sweep.cells[Scheme::kBaseline][0].latency_ms;
  store_cache(app, quick, max_checkpoints, sweep);
  return sweep;
}

void print_panel(AppKind app, const CommonCaseSweep& sweep, Metric metric) {
  const double base = metric == Metric::kThroughput
                          ? sweep.baseline_zero_throughput
                          : sweep.baseline_zero_latency_ms;
  std::printf("\n(%s) — normalized %s vs. checkpoints in the window\n",
              app_name(app),
              metric == Metric::kThroughput ? "throughput" : "latency");
  std::vector<std::string> headers{"scheme"};
  for (int k = 0; k <= 8; ++k) headers.push_back("k=" + std::to_string(k));
  TablePrinter table(headers, 10);
  for (const Scheme scheme : kAllSchemes) {
    std::vector<std::string> row{scheme_name(scheme)};
    const auto it = sweep.cells.find(scheme);
    for (int k = 0; k <= 8; ++k) {
      const auto cit = it->second.find(k);
      if (cit == it->second.end()) {
        row.push_back("-");
        continue;
      }
      const double v = metric == Metric::kThroughput ? cit->second.throughput
                                                     : cit->second.latency_ms;
      row.push_back(base > 0 ? fmt(v / base) : fmt(0.0));
    }
    table.row(row);
  }

  // The figure itself, ASCII-rendered.
  std::vector<double> xs;
  for (int k = 0; k <= 8; ++k) xs.push_back(k);
  std::vector<Series> plot;
  for (const Scheme scheme : kAllSchemes) {
    Series s{scheme_name(scheme), {}};
    for (int k = 0; k <= 8; ++k) {
      const auto& cell = sweep.cells.at(scheme).at(k);
      const double v =
          metric == Metric::kThroughput ? cell.throughput : cell.latency_ms;
      s.y.push_back(base > 0 ? v / base : 0.0);
    }
    plot.push_back(std::move(s));
  }
  std::printf("%s", render_line_chart("", xs, plot, 64, 12,
                                      "checkpoints in window",
                                      metric == Metric::kThroughput
                                          ? "normalized throughput"
                                          : "normalized latency")
                        .c_str());
}

}  // namespace ms::bench
