# Empty compiler generated dependencies file for ms_statesize.
# This may be replaced when dependencies are built.
