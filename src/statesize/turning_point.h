// Turning-point detection and instantaneous change rate (ICR) estimation for
// a sampled state-size signal (paper §III-C2/3).
//
// A dynamic HAU samples its state_size() periodically. When the direction of
// change flips, the previous sample is a *turning point* (local extremum).
// The ICR reported alongside a turning point is the slope of the segment
// *leaving* it — known one sample after the extremum, which is the small lag
// the paper acknowledges and ignores.
#pragma once

#include <optional>
#include <vector>

#include "common/units.h"

namespace ms::statesize {

struct TurningPoint {
  SimTime t;
  double size = 0.0;
  double icr = 0.0;  // size units per second, slope after the turning point
  bool is_minimum = false;
};

class TurningPointDetector {
 public:
  /// Relative change below this is treated as flat (noise suppression).
  explicit TurningPointDetector(double noise_epsilon = 1e-9)
      : eps_(noise_epsilon) {}

  /// Feed one sample. Returns the turning point completed by this sample, if
  /// any (the extremum lies at an *earlier* sample; `icr` is computed from
  /// the segment between that extremum and this sample).
  std::optional<TurningPoint> add_sample(SimTime t, double size);

  /// Slope of the current monotone segment (size/second), 0 before 2 samples.
  double current_icr() const { return icr_; }
  /// Latest observed size (0 before any sample).
  double last_size() const { return last_size_; }
  bool has_samples() const { return n_ > 0; }

  void reset();

 private:
  enum class Dir { kFlat, kUp, kDown };
  Dir direction(double from, double to) const;

  double eps_;
  int n_ = 0;
  SimTime last_t_ = SimTime::zero();
  double last_size_ = 0.0;
  Dir last_dir_ = Dir::kFlat;
  SimTime extremum_t_ = SimTime::zero();
  double extremum_size_ = 0.0;
  double icr_ = 0.0;
};

/// Piecewise-linear state-size function rebuilt from turning points
/// (paper Fig. 10): the controller stores only the turning points reported
/// by dynamic HAUs and linearly interpolates between them.
class PolylineSignal {
 public:
  void add_point(SimTime t, double size);
  double value_at(SimTime t) const;  // linear interpolation, clamped ends
  bool empty() const { return pts_.empty(); }
  const std::vector<std::pair<SimTime, double>>& points() const { return pts_; }

  /// Minimum over [from, to] — attained at a vertex or interval end.
  std::pair<SimTime, double> minimum_in(SimTime from, SimTime to) const;

 private:
  std::vector<std::pair<SimTime, double>> pts_;  // strictly increasing t
};

}  // namespace ms::statesize
