# Empty compiler generated dependencies file for transport_monitor.
# This may be replaced when dependencies are built.
