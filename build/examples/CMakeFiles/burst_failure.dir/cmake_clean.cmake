file(REMOVE_RECURSE
  "CMakeFiles/burst_failure.dir/burst_failure.cpp.o"
  "CMakeFiles/burst_failure.dir/burst_failure.cpp.o.d"
  "burst_failure"
  "burst_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
