// Fig. 14 — Checkpoint time, broken into token collection / disk I/O /
// other, for MS-src (total only, as in the paper: token propagation and
// individual checkpoints overlap), MS-src+ap, MS-src+ap+aa, and the Oracle
// (checkpoint exactly at the minimal-state moment), per application.
//
// Also reports the checkpointed state reduction of application-aware
// checkpointing (the paper's Sec. II-B2 claim: ~100 % / 50 % / 80 % for
// TMI / BCP / SignalGuru).
#include <cstdio>

#include "ascii_chart.h"
#include "ckpt_protocols.h"

int main(int argc, char** argv) {
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  const ms::SimTime warm =
      quick ? ms::SimTime::seconds(90) : ms::SimTime::seconds(420);
  const ms::SimTime period =
      quick ? ms::SimTime::seconds(120) : ms::SimTime::seconds(200);
  const int tmi_minutes = quick ? 2 : 10;

  std::printf("=== Fig. 14: checkpoint time (token collection / disk I/O / "
              "other) ===\n");
  for (const AppKind app : kAllApps) {
    std::printf("\n(%s)\n", app_name(app));
    TablePrinter table({"scheme", "total", "tokens", "disk I/O", "other",
                        "ckpt state"},
                       14);
    std::vector<Bar> bars;
    double ap_state = 0.0, aa_state = 0.0;
    for (const CkptFlavor flavor : kAllFlavors) {
      auto arranged =
          arrange_checkpoint(app, flavor, warm, period, tmi_minutes);
      if (!arranged.has_value()) {
        table.row({flavor_name(flavor), "timeout", "-", "-", "-", "-"});
        continue;
      }
      const auto& s = arranged->stats;
      if (flavor == CkptFlavor::kSrc) {
        // Trickling tokens: individual checkpoints overlap with propagation;
        // the paper reports only the total.
        table.row({flavor_name(flavor), fmt(s.total().to_seconds(), 3) + "s",
                   "-", "-", "-", fmt_bytes(s.total_declared)});
        bars.push_back(Bar{flavor_name(flavor),
                           {{"total (unbroken)", s.total().to_seconds()}}});
      } else {
        table.row({flavor_name(flavor),
                   fmt(s.slowest.total().to_seconds(), 3) + "s",
                   fmt(s.slowest.token_collection().to_seconds(), 3) + "s",
                   fmt(s.slowest.disk_io().to_seconds(), 3) + "s",
                   fmt(s.slowest.other().to_seconds(), 3) + "s",
                   fmt_bytes(s.total_declared)});
        bars.push_back(
            Bar{flavor_name(flavor),
                {{"token collection",
                  s.slowest.token_collection().to_seconds()},
                 {"disk I/O", s.slowest.disk_io().to_seconds()},
                 {"other", s.slowest.other().to_seconds()}}});
      }
      if (flavor == CkptFlavor::kSrcAp) {
        ap_state = static_cast<double>(s.total_declared);
      }
      if (flavor == CkptFlavor::kSrcApAa) {
        aa_state = static_cast<double>(s.total_declared);
      }
    }
    std::printf("%s", render_stacked_bars("", bars, 52, "s").c_str());
    if (ap_state > 0 && aa_state > 0) {
      std::printf("application-aware checkpointed-state reduction: %.0f%% "
                  "(paper Sec. II-B2: ~100/50/80%% for TMI/BCP/SG)\n",
                  (1.0 - aa_state / ap_state) * 100.0);
    }
  }
  return 0;
}
