// msfailgen — failure-trace generator for commodity data centers.
//
// Generates a deterministic failure trace from the Table-I-derived models
// (Google DC or Abe cluster) and prints it as CSV: independent node
// failures plus rack- and power-correlated bursts, with repair times. Use
// it to drive external experiments or to eyeball what a year of a 2400-node
// data center looks like.
//
//   msfailgen --model google --nodes 2400 --rack 80 --days 365 --seed 42
#include <cstdio>
#include <cstring>
#include <string>

#include "failure/afn100.h"
#include "failure/burst.h"

int main(int argc, char** argv) {
  using namespace ms;

  failure::FailureModel model = failure::FailureModel::google();
  int nodes = 2400;
  int rack = 80;
  double days = 365.0;
  std::uint64_t seed = 42;
  double accel = 1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return 2;
      if (std::strcmp(v, "google") == 0) {
        model = failure::FailureModel::google();
      } else if (std::strcmp(v, "abe") == 0) {
        model = failure::FailureModel::abe();
      } else {
        std::fprintf(stderr, "unknown model %s (google|abe)\n", v);
        return 2;
      }
    } else if (arg == "--nodes") {
      const char* v = next();
      if (v == nullptr) return 2;
      nodes = std::atoi(v);
    } else if (arg == "--rack") {
      const char* v = next();
      if (v == nullptr) return 2;
      rack = std::atoi(v);
    } else if (arg == "--days") {
      const char* v = next();
      if (v == nullptr) return 2;
      days = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return 2;
      seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--accel") {
      const char* v = next();
      if (v == nullptr) return 2;
      accel = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("msfailgen --model google|abe --nodes N --rack R --days D "
                  "--seed S [--accel X]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  failure::FailureTraceGenerator gen(model, seed);
  gen.set_acceleration(accel);
  const auto trace = gen.generate(nodes, rack,
                                  SimTime::seconds(days * 24.0 * 3600.0));

  std::printf("# model AFN100=%.1f nodes=%d rack=%d days=%.0f seed=%llu\n",
              model.total_afn100, nodes, rack, days,
              static_cast<unsigned long long>(seed));
  std::printf("time_s,kind,num_nodes,repair_s,first_node\n");
  std::int64_t single = 0, burst_nodes = 0;
  for (const auto& ev : trace) {
    std::printf("%.0f,%s,%zu,%.0f,%d\n", ev.at.to_seconds(),
                failure::failure_kind_name(ev.kind), ev.nodes.size(),
                ev.repair_after.to_seconds(),
                ev.nodes.empty() ? -1 : ev.nodes.front());
    if (ev.kind == failure::FailureEvent::Kind::kSingleNode) {
      single += static_cast<std::int64_t>(ev.nodes.size());
    } else {
      burst_nodes += static_cast<std::int64_t>(ev.nodes.size());
    }
  }
  std::fprintf(stderr,
               "# %zu events: %lld independent node failures, %lld burst "
               "node-failures (%.1f%% correlated)\n",
               trace.size(), static_cast<long long>(single),
               static_cast<long long>(burst_nodes),
               100.0 * static_cast<double>(burst_nodes) /
                   static_cast<double>(single + burst_nodes));
  return 0;
}
