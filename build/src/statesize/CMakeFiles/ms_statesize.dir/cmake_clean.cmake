file(REMOVE_RECURSE
  "CMakeFiles/ms_statesize.dir/turning_point.cc.o"
  "CMakeFiles/ms_statesize.dir/turning_point.cc.o.d"
  "libms_statesize.a"
  "libms_statesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_statesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
