#include "failure/burst.h"

#include <gtest/gtest.h>

#include "../testing/test_ops.h"

namespace ms::failure {
namespace {

TEST(FailureTraceTest, DeterministicForSeed) {
  FailureTraceGenerator a(FailureModel::google(), 42);
  FailureTraceGenerator b(FailureModel::google(), 42);
  const auto ta = a.generate(240, 80, SimTime::minutes(600));
  const auto tb = b.generate(240, 80, SimTime::minutes(600));
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].nodes, tb[i].nodes);
    EXPECT_EQ(ta[i].kind, tb[i].kind);
  }
}

TEST(FailureTraceTest, SortedByTime) {
  FailureTraceGenerator gen(FailureModel::google(), 7);
  gen.set_acceleration(2000.0);
  const auto trace = gen.generate(160, 80, SimTime::minutes(60));
  ASSERT_GT(trace.size(), 5u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
}

TEST(FailureTraceTest, StorageNodeNeverFails) {
  FailureTraceGenerator gen(FailureModel::google(), 7);
  gen.set_acceleration(5000.0);
  const auto trace = gen.generate(160, 80, SimTime::minutes(60));
  for (const auto& ev : trace) {
    for (const auto n : ev.nodes) EXPECT_NE(n, 159);
  }
}

TEST(FailureTraceTest, RackBurstsCoverWholeRack) {
  FailureTraceGenerator gen(FailureModel::google(), 11);
  gen.set_acceleration(5000.0);
  const auto trace = gen.generate(240, 80, SimTime::minutes(120));
  bool saw_rack = false;
  for (const auto& ev : trace) {
    if (ev.kind == FailureEvent::Kind::kRackBurst) {
      saw_rack = true;
      // All nodes of one rack (the storage node may be excluded).
      EXPECT_GE(ev.nodes.size(), 79u);
      const int rack = ev.nodes.front() / 80;
      for (const auto n : ev.nodes) EXPECT_EQ(n / 80, rack);
      EXPECT_GT(ev.repair_after, SimTime::minutes(59));
    }
  }
  EXPECT_TRUE(saw_rack);
}

TEST(FailureTraceTest, BurstShareRoughlyMatchesModel) {
  FailureTraceGenerator gen(FailureModel::google(), 13);
  gen.set_acceleration(1000.0);
  const auto trace = gen.generate(800, 80, SimTime::minutes(600),
                                  /*spare_storage_node=*/true);
  std::int64_t single = 0, burst = 0;
  for (const auto& ev : trace) {
    if (ev.kind == FailureEvent::Kind::kSingleNode) {
      single += static_cast<std::int64_t>(ev.nodes.size());
    } else {
      burst += static_cast<std::int64_t>(ev.nodes.size());
    }
  }
  ASSERT_GT(single + burst, 100);
  const double share =
      static_cast<double>(burst) / static_cast<double>(single + burst);
  // Model says ~10 % of failures are correlated; generation is stochastic.
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.4);
}

TEST(FailureInjectorTest, InjectNowFailsNodesAndHaus) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, ms::testing::small_cluster(4));
  core::Application app(&cluster,
                        ms::testing::chain_graph(2, SimTime::millis(10)));
  app.deploy();
  app.start();
  FailureInjector injector(&cluster, &app);
  injector.inject_now({1, 2});
  EXPECT_FALSE(cluster.node_alive(1));
  EXPECT_TRUE(app.hau(1).failed());
  EXPECT_TRUE(app.hau(2).failed());
  EXPECT_FALSE(app.hau(0).failed());
  EXPECT_EQ(injector.nodes_failed(), 2);
}

TEST(FailureInjectorTest, FailWholeApplication) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, ms::testing::small_cluster(6));
  core::Application app(&cluster,
                        ms::testing::chain_graph(2, SimTime::millis(10)));
  app.deploy();
  app.start();
  FailureInjector injector(&cluster, &app);
  const auto failed = injector.fail_whole_application();
  EXPECT_EQ(failed.size(), 4u);
  for (int i = 0; i < app.num_haus(); ++i) EXPECT_TRUE(app.hau(i).failed());
  EXPECT_TRUE(cluster.node_alive(4));  // unused compute node stays up
}

TEST(FailureInjectorTest, ScheduledEventRevivesNodes) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, ms::testing::small_cluster(4));
  core::Application app(&cluster,
                        ms::testing::chain_graph(1, SimTime::millis(10)));
  app.deploy();
  app.start();
  FailureInjector injector(&cluster, &app);
  FailureEvent ev;
  ev.kind = FailureEvent::Kind::kSingleNode;
  ev.at = SimTime::seconds(1);
  ev.nodes = {1};
  ev.repair_after = SimTime::seconds(5);
  injector.schedule({ev});
  sim.run_until(SimTime::seconds(2));
  EXPECT_FALSE(cluster.node_alive(1));
  sim.run_until(SimTime::seconds(7));
  EXPECT_TRUE(cluster.node_alive(1));
  // The HAU does not come back on its own (recovery is the scheme's job).
  EXPECT_TRUE(app.hau(1).failed());
}

TEST(FailureInjectorTest, DoubleFailureIsIdempotent) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, ms::testing::small_cluster(3));
  FailureInjector injector(&cluster, nullptr);
  injector.inject_now({0});
  injector.inject_now({0});
  EXPECT_EQ(injector.nodes_failed(), 1);
}

TEST(FailureKindTest, Names) {
  EXPECT_STREQ(failure_kind_name(FailureEvent::Kind::kSingleNode),
               "single-node");
  EXPECT_STREQ(failure_kind_name(FailureEvent::Kind::kRackBurst), "rack-burst");
  EXPECT_STREQ(failure_kind_name(FailureEvent::Kind::kPowerBurst),
               "power-burst");
}

}  // namespace
}  // namespace ms::failure
