// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper; this
// harness owns the common machinery: building the three applications at
// their calibrated operating points, attaching a fault-tolerance scheme
// configured for K checkpoints in the measurement window, and the warmup /
// measure / report cycle. Everything is deterministic for a given seed.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/bcp.h"
#include "apps/signalguru.h"
#include "apps/tmi.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/application.h"
#include "ft/baseline.h"
#include "ft/meteor_shower.h"

namespace ms::bench {

enum class AppKind { kTmi, kBcp, kSignalGuru };
/// kMsSrcApDelta = MS-src+ap plus incremental (delta) checkpoints and the
/// adaptive cadence controller. It is intentionally NOT part of kAllSchemes:
/// the paper's figures sweep the original four schemes, and the common-case
/// sweep cache's cell layout is keyed to that set. Benches that study the
/// delta/cadence scheme (ablation_delta_checkpoint) name it explicitly.
enum class Scheme { kBaseline, kMsSrc, kMsSrcAp, kMsSrcApAa, kMsSrcApDelta };

const char* app_name(AppKind a);
const char* scheme_name(Scheme s);
constexpr AppKind kAllApps[] = {AppKind::kTmi, AppKind::kBcp,
                                AppKind::kSignalGuru};
constexpr Scheme kAllSchemes[] = {Scheme::kBaseline, Scheme::kMsSrc,
                                  Scheme::kMsSrcAp, Scheme::kMsSrcApAa};

/// The calibrated operating point of one application: the query graph plus
/// which HAUs are dynamic (batch-windowed state) and where latency is
/// measured.
struct AppSetup {
  core::QueryGraph graph;
  std::vector<int> dynamic_haus;
  std::vector<int> latency_probes;
  /// TMI's window parameter (N) in minutes, when applicable.
  int tmi_window_minutes = 10;
};

/// Build an application's graph at the paper's operating point. The
/// operator cost parameters are calibrated (see DESIGN.md) so that the hot
/// stages run near saturation — the regime in which preservation overheads
/// and checkpoint pauses translate into throughput loss, as on the paper's
/// loaded EC2 nodes.
AppSetup make_app(AppKind kind, int tmi_window_minutes = 10);

/// A deployed experiment: cluster + application + scheme.
class Experiment {
 public:
  /// `checkpoints_in_window` configures the scheme so that (about) that many
  /// application checkpoints fire within `window` after warmup() completes.
  /// `params_hook`, if given, adjusts the fault-tolerance parameters before
  /// the scheme is constructed (ablation sweeps).
  Experiment(AppKind app_kind, Scheme scheme, int checkpoints_in_window,
             SimTime window = SimTime::minutes(10),
             std::uint64_t seed = 0x9d2cULL, int tmi_window_minutes = 10,
             std::function<void(ft::FtParams&)> params_hook = nullptr);

  /// Run the warmup phase (fills pipelines; for +aa also runs the
  /// observation/profiling periods) and reset all metrics.
  void warmup();

  /// Run the measurement window.
  void measure();

  core::Application& app() { return *app_; }
  core::Cluster& cluster() { return *cluster_; }
  sim::Simulation& sim() { return sim_; }
  ft::MsScheme* ms() { return ms_.get(); }
  ft::BaselineScheme* baseline() { return baseline_.get(); }
  const AppSetup& setup() const { return setup_; }
  SimTime window() const { return window_; }
  Scheme scheme() const { return scheme_; }

  /// Aggregate state size of the dynamic HAUs right now (Fig. 5's curve).
  Bytes dynamic_state() const;

  // --- results of the last measure() ---
  double throughput_tuples() const { return throughput_; }
  double mean_latency_ms() const { return latency_ms_; }
  int checkpoints_completed() const { return checkpoints_completed_; }

  /// Spare nodes available for recovery experiments.
  std::vector<net::NodeId> spare_nodes() const;

  /// Install `trace` on the attached scheme and the shared storage so the
  /// whole run records protocol spans (checkpoint phases per HAU, recovery
  /// phases, storage operations). Call before warmup() to capture
  /// everything, or after it to trace only the measurement window.
  void enable_tracing(TraceRecorder* trace);

  ft::FtParams& params() { return params_; }

 private:
  void configure_scheme(int checkpoints_in_window);

  AppKind app_kind_;
  Scheme scheme_;
  SimTime window_;
  std::uint64_t seed_;
  AppSetup setup_;
  ft::FtParams params_;

  sim::Simulation sim_;
  std::unique_ptr<core::Cluster> cluster_;
  std::unique_ptr<core::Application> app_;
  std::unique_ptr<ft::MsScheme> ms_;
  std::unique_ptr<ft::BaselineScheme> baseline_;

  SimTime warmup_end_;
  double throughput_ = 0.0;
  double latency_ms_ = 0.0;
  int checkpoints_completed_ = 0;
  int ckpts_at_measure_start_ = 0;
};

// --- printing helpers -------------------------------------------------------

/// Fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 14);
  void row(const std::vector<std::string>& cells);
  void rule();

 private:
  std::size_t cols_;
  int width_;
};

std::string fmt(double v, int precision = 2);
std::string fmt_bytes(Bytes b);
std::string fmt_time(SimTime t);

/// True when the binary was invoked with --quick (shorter windows for smoke
/// runs; full fidelity by default).
bool quick_mode(int argc, char** argv);

/// Value of a `--json=<path>` flag, or "" when absent. Bench binaries that
/// support structured output write a JSON array of result rows there in
/// addition to their ASCII tables — the bench_trajectory runner consumes it.
std::string json_path(int argc, char** argv);

/// Collects benchmark result rows and serializes them as a JSON array of
/// objects with a fixed schema: {"name", "iters", "ns_per_op",
/// "tuples_per_sec"}. Rows that measure something other than transport
/// throughput (figure cells, latencies) reuse the same fields — ns_per_op
/// for time-like values, tuples_per_sec for rate-like values — so one
/// parser reads every bench's output.
class JsonResultWriter {
 public:
  void add(const std::string& name, std::int64_t iters, double ns_per_op,
           double tuples_per_sec);
  /// Writes the collected rows to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;
  bool empty() const { return rows_.empty(); }

 private:
  struct Row {
    std::string name;
    std::int64_t iters;
    double ns_per_op;
    double tuples_per_sec;
  };
  std::vector<Row> rows_;
};

}  // namespace ms::bench
