// Flow-level network model with per-NIC contention.
//
// A message from A to B is serialized on A's transmit NIC (FIFO), crosses the
// fabric with rack-dependent latency, and is clocked into B's receive NIC
// (FIFO at NIC bandwidth). This captures the two contention points that
// matter for the paper's experiments: fan-in at busy downstream HAUs and the
// storage node's NIC during checkpoints. Delivery is per-sender in-order
// (TCP-like); messages to or from a dead node are dropped at delivery time.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace ms::net {

enum class MsgCategory : int {
  kData = 0,        // stream tuples
  kToken,           // checkpoint tokens (embedded markers / 1-hop tokens)
  kControl,         // controller commands, state-size reports, pings
  kAck,             // input-preservation acknowledgments
  kCheckpoint,      // checkpointed state to/from storage
  kPreserve,        // preserved tuples to storage (source preservation)
  kReplay,          // replayed tuples during recovery
  kCount,
};

const char* msg_category_name(MsgCategory c);

struct NetworkStats {
  std::array<std::int64_t, static_cast<std::size_t>(MsgCategory::kCount)> messages{};
  std::array<std::int64_t, static_cast<std::size_t>(MsgCategory::kCount)> bytes{};
  /// Drops attributed per category (dead endpoints, injected loss, and
  /// partitions all count here); `dropped` stays the aggregate total so
  /// existing callers keep working.
  std::array<std::int64_t, static_cast<std::size_t>(MsgCategory::kCount)> dropped_by{};
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;  // extra copies injected by a FaultPlan

  std::int64_t total_bytes() const;
  std::int64_t bytes_of(MsgCategory c) const {
    return bytes[static_cast<std::size_t>(c)];
  }
  std::int64_t dropped_of(MsgCategory c) const {
    return dropped_by[static_cast<std::size_t>(c)];
  }
};

/// Unreliable-channel behaviour for one message category. All probabilities
/// are per-message and independent.
struct FaultSpec {
  double drop = 0.0;       // silently lost (on_dropped still fires)
  double duplicate = 0.0;  // delivered a second time shortly after the first
  double reorder = 0.0;    // delivery pushed past later traffic on the link
  double delay_p = 0.0;    // probability of adding `delay` to delivery
  SimTime delay = SimTime::zero();
};

/// Seeded, deterministic description of injected network faults: a FaultSpec
/// per MsgCategory plus rack-granularity partitions. The same plan + seed +
/// workload reproduces the same drop/duplicate/reorder pattern exactly.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::array<FaultSpec, static_cast<std::size_t>(MsgCategory::kCount)> by_category{};

  FaultSpec& spec(MsgCategory c) {
    return by_category[static_cast<std::size_t>(c)];
  }
  const FaultSpec& spec(MsgCategory c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
};

class Network {
 public:
  Network(sim::Simulation* sim, const Topology* topo);

  /// Deliver `deliver` on the destination after transfer of `size` bytes.
  /// If either endpoint is dead at send or delivery time, the message is
  /// dropped (and `on_dropped`, if given, runs instead at the same instant).
  void send(NodeId from, NodeId to, Bytes size, MsgCategory category,
            std::function<void()> deliver,
            std::function<void()> on_dropped = nullptr);

  void set_alive(NodeId n, bool alive);
  bool alive(NodeId n) const;

  /// Revive bookkeeping: clears NIC backlogs of a node (used on restart).
  void reset_node(NodeId n);

  /// Install an unreliable-channel plan; reseeds the fault RNG from
  /// `plan.seed` so runs are reproducible. Partitions installed earlier are
  /// kept. `clear_fault_plan()` restores fully reliable delivery.
  void set_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();
  bool fault_plan_active() const { return plan_active_; }

  /// Sever (or restore) all links between two racks. Cross-partition
  /// messages are dropped at send time, with on_dropped fired.
  void set_rack_partition(int rack_a, int rack_b, bool severed);
  void clear_partitions() { severed_.clear(); }
  bool partitioned(NodeId a, NodeId b) const;

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  const Topology& topology() const { return *topo_; }
  sim::Simulation& simulation() { return *sim_; }

 private:
  void count_drop(MsgCategory category);

  sim::Simulation* sim_;
  const Topology* topo_;
  std::vector<bool> alive_;
  std::vector<SimTime> tx_busy_until_;
  std::vector<SimTime> rx_busy_until_;
  NetworkStats stats_;
  FaultPlan plan_;
  bool plan_active_ = false;
  Rng fault_rng_;
  std::set<std::pair<int, int>> severed_;  // rack pairs, (min, max)
};

}  // namespace ms::net
