// SpscRing + EventCount: the RtEngine transport's two lock-free halves.
//
// Covers index wraparound, the full/empty boundaries, the zero-copy
// front()/pop_front() consumer protocol, move-only slot hygiene, and — under
// real threads — FIFO delivery, the occupancy bound, and the
// prepare/re-check/wait parking handshake the engine builds its blocking
// edges from. The concurrent cases run under the sanitize and tsan presets.
#include "common/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/eventcount.h"

namespace ms {
namespace {

TEST(SpscRingTest, RoundsSlotsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).slots(), 1u);
  EXPECT_EQ(SpscRing<int>(2).slots(), 2u);
  EXPECT_EQ(SpscRing<int>(3).slots(), 4u);
  EXPECT_EQ(SpscRing<int>(4096 + 64 + 2).slots(), 8192u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  int v = -1;
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRingTest, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  ASSERT_EQ(ring.slots(), 4u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  // Exactly slots() entries fit; the next push must fail and leave state
  // intact.
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  int v = -1;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  // One freed slot re-admits exactly one push.
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
  for (int want = 1; want <= 4; ++want) {
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, WraparoundPreservesOrder) {
  // A tiny ring forces the indices through many wraps; the masked slot
  // arithmetic must keep FIFO order across every boundary.
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  const std::uint64_t total = 100000;
  while (next_pop < total) {
    while (next_push < total && ring.try_push(std::uint64_t(next_push))) {
      ++next_push;
    }
    std::uint64_t v = 0;
    while (ring.try_pop(v)) {
      EXPECT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, total);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FrontThenPopFront) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.front(), nullptr);
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_push(8));
  int* f = ring.front();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, 7);
  // front() is idempotent until the slot is retired.
  EXPECT_EQ(ring.front(), f);
  ring.pop_front();
  f = ring.front();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, 8);
  ring.pop_front();
  EXPECT_EQ(ring.front(), nullptr);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FrontBorrowHoldsSlotAgainstProducer) {
  // While the consumer is processing a borrowed front() entry the slot must
  // stay unavailable to the producer — pop_front() is the only release.
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_FALSE(ring.try_push(3));  // still full: borrow is not a pop
  ring.pop_front();
  EXPECT_TRUE(ring.try_push(3));
}

TEST(SpscRingTest, PopFrontDestroysLeftBehindValue) {
  // The engine moves batches out of borrowed slots but leaves single tuples
  // in place; pop_front() must destroy whatever remains so resources never
  // outlive the slot (ASan/LSan guard this).
  auto counter = std::make_shared<int>(0);
  {
    SpscRing<std::shared_ptr<int>> ring(4);
    ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(counter)));
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(counter.use_count(), 2);
    ring.pop_front();  // value intentionally not moved out
    EXPECT_EQ(counter.use_count(), 1);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SpscRingTest, MoveOnlyValues) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.try_push(std::make_unique<int>(i)));
  }
  std::unique_ptr<int> v;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(*v, 0);
  auto* f = ring.front();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(**f, 1);
  std::unique_ptr<int> moved = std::move(*f);
  ring.pop_front();
  EXPECT_EQ(*moved, 1);
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(*v, 2);
}

TEST(SpscRingTest, ConcurrentFifoStress) {
  // Two real threads through a deliberately tiny ring: every value arrives,
  // in order, and the occupancy the consumer observes never exceeds slots().
  SpscRing<std::uint64_t> ring(16);
  const std::uint64_t total = 200000;
  std::atomic<bool> over_occupancy{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < total; ++i) {
      while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  while (expect < total) {
    if (ring.size_approx() > ring.slots()) over_occupancy.store(true);
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expect);
    ++expect;
  }
  producer.join();
  EXPECT_FALSE(over_occupancy.load());
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, ConcurrentFrontPopFrontStress) {
  SpscRing<std::uint64_t> ring(8);
  const std::uint64_t total = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < total; ++i) {
      while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  while (expect < total) {
    std::uint64_t* f = ring.front();
    if (f == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*f, expect);
    ring.pop_front();
    ++expect;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(EventCountTest, NotifyWithNoWaitersIsCheap) {
  EventCount ec;
  ec.notify();  // must not block or bump state a later waiter depends on
  // cancel after prepare leaves the eventcount reusable
  (void)ec.prepare_wait();
  ec.cancel_wait();
  ec.notify();
}

TEST(EventCountTest, ParkAndWake) {
  EventCount ec;
  std::atomic<bool> ready{false};
  std::thread waiter([&] {
    // The engine's parking protocol: announce, re-check, sleep; loop on
    // spurious wakeups.
    for (;;) {
      if (ready.load(std::memory_order_seq_cst)) return;
      const EventCount::Key key = ec.prepare_wait();
      if (ready.load(std::memory_order_seq_cst)) {
        ec.cancel_wait();
        return;
      }
      ec.wait(key);
    }
  });
  ready.store(true, std::memory_order_seq_cst);
  ec.notify();
  waiter.join();
}

TEST(EventCountTest, BlockingRingHonorsBoundUnderContention) {
  // A miniature of the engine's blocking edge: ring + two eventcounts +
  // external pushed/popped counters enforcing a bound *below* the ring's
  // physical capacity, the way queue_capacity sits below ring_slots.
  constexpr std::uint64_t kBound = 4;
  SpscRing<std::uint64_t> ring(8);
  EventCount items, space;
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  std::atomic<std::uint64_t> max_inflight{0};
  const std::uint64_t total = 50000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < total; ++i) {
      while (pushed.load(std::memory_order_relaxed) -
                 popped.load(std::memory_order_acquire) >=
             kBound) {
        const EventCount::Key key = space.prepare_wait();
        if (pushed.load(std::memory_order_relaxed) -
                popped.load(std::memory_order_acquire) <
            kBound) {
          space.cancel_wait();
          break;
        }
        space.wait(key);
      }
      ASSERT_TRUE(ring.try_push(std::uint64_t(i)));
      pushed.store(pushed.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
      items.notify();
    }
  });

  std::uint64_t expect = 0;
  while (expect < total) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      const EventCount::Key key = items.prepare_wait();
      if (!ring.empty()) {
        items.cancel_wait();
        continue;
      }
      if (expect >= total) {
        items.cancel_wait();
        break;
      }
      items.wait(key);
      continue;
    }
    ASSERT_EQ(v, expect);
    ++expect;
    const std::uint64_t inflight = pushed.load(std::memory_order_acquire) -
                                   popped.load(std::memory_order_relaxed);
    std::uint64_t seen = max_inflight.load(std::memory_order_relaxed);
    while (inflight > seen &&
           !max_inflight.compare_exchange_weak(seen, inflight)) {
    }
    popped.store(popped.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
    space.notify();
  }
  producer.join();
  // The producer blocked on the external bound, never on ring capacity.
  EXPECT_LE(max_inflight.load(), kBound);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace ms
