// Fig. 16 — Worst-case recovery time (all application nodes fail; every HAU
// restarts on a healthy spare and reads its state from shared storage),
// broken into reconnection / disk I/O / other, for MS-src(+ap) (identical
// recovery: same checkpointed state), MS-src+ap+aa, and the Oracle.
#include <cstdio>

#include "ascii_chart.h"
#include "ckpt_protocols.h"
#include "failure/burst.h"

int main(int argc, char** argv) {
  using namespace ms;
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  const SimTime warm = quick ? SimTime::seconds(90) : SimTime::seconds(420);
  const SimTime period =
      quick ? SimTime::seconds(120) : SimTime::seconds(200);
  const int tmi_minutes = quick ? 2 : 10;

  std::printf("=== Fig. 16: worst-case recovery time (reconnection / disk "
              "I/O / other) ===\n");
  for (const AppKind app : kAllApps) {
    std::printf("\n(%s)\n", app_name(app));
    TablePrinter table(
        {"scheme", "total", "reconnect", "disk I/O", "other", "state read"},
        14);
    std::vector<Bar> bars;
    for (const CkptFlavor flavor :
         {CkptFlavor::kSrcAp, CkptFlavor::kSrcApAa, CkptFlavor::kOracle}) {
      auto arranged =
          arrange_checkpoint(app, flavor, warm, period, tmi_minutes);
      if (!arranged.has_value()) {
        table.row({flavor_name(flavor), "timeout", "-", "-", "-", "-"});
        continue;
      }
      Experiment& exp = *arranged->exp;
      auto& sim = exp.sim();
      // Let the checkpoint settle, then kill every application node.
      sim.run_until(sim.now() + SimTime::seconds(5));
      failure::FailureInjector injector(&exp.cluster(), &exp.app());
      injector.fail_whole_application();

      bool done = false;
      ft::RecoveryStats stats;
      exp.ms()->recover_application(exp.spare_nodes(),
                                    [&](ft::RecoveryStats s) {
                                      done = true;
                                      stats = s;
                                    });
      const SimTime deadline = sim.now() + SimTime::seconds(600);
      while (!done && sim.now() < deadline) {
        sim.run_until(sim.now() + SimTime::seconds(5));
      }
      if (!done) {
        table.row({flavor_name(flavor), "timeout", "-", "-", "-", "-"});
        continue;
      }
      const char* label = flavor == CkptFlavor::kSrcAp
                              ? "MS-src(+ap)"
                              : flavor_name(flavor);
      table.row({label, fmt(stats.total().to_seconds(), 3) + "s",
                 fmt(stats.reconnection.to_seconds(), 3) + "s",
                 fmt(stats.disk_io.to_seconds(), 3) + "s",
                 fmt(stats.other.to_seconds(), 3) + "s",
                 fmt_bytes(stats.bytes_read)});
      bars.push_back(Bar{label,
                         {{"reconnection", stats.reconnection.to_seconds()},
                          {"disk I/O", stats.disk_io.to_seconds()},
                          {"other", stats.other.to_seconds()}}});
    }
    std::printf("%s", render_stacked_bars("", bars, 52, "s").c_str());
  }
  std::printf("\n(The baseline cannot recover from this failure at all: the "
              "preservation\nbuffers it needs live on the dead upstream "
              "nodes — see the burst example.)\n");
  return 0;
}
