// The runtime's stamping and charging contract (OperatorContext): lineage
// inheritance during process(), fresh lineage from timer callbacks, wire
// size widening from payloads, and the charge() paths.
#include <gtest/gtest.h>

#include "../testing/test_ops.h"
#include "core/application.h"
#include "core/operator.h"

namespace ms::core {
namespace {

using ms::testing::IntPayload;
using ms::testing::small_cluster;

/// Captures every tuple the downstream sink receives, with full headers.
class HeaderSink final : public Operator {
 public:
  explicit HeaderSink(std::string name) : Operator(std::move(name)) {}
  void process(int, const Tuple& t, OperatorContext&) override {
    received.push_back(t);
  }
  Bytes state_size() const override { return 0; }
  std::vector<Tuple> received;
};

/// Emits one tuple from process() (inheriting lineage) and one from a timer
/// (fresh lineage).
class DualEmitter final : public Operator {
 public:
  explicit DualEmitter(std::string name) : Operator(std::move(name)) {}

  void on_open(OperatorContext& ctx) override {
    ctx.schedule(SimTime::millis(50), [](OperatorContext& c) {
      Tuple t;
      t.wire_size = 64;
      t.payload = std::make_shared<IntPayload>(-1, 64);
      c.emit(0, std::move(t));
    });
  }

  void process(int, const Tuple& t, OperatorContext& ctx) override {
    Tuple out;
    out.wire_size = 64;
    out.payload = std::make_shared<IntPayload>(
        t.payload_as<IntPayload>()->value, 64);
    ctx.emit(0, std::move(out));
  }
  Bytes state_size() const override { return 0; }
};

class StampingTest : public ::testing::Test {
 protected:
  void build() {
    QueryGraph g;
    const int src = g.add_source("src", [] {
      return std::make_unique<ms::testing::CounterSource>("src",
                                                          SimTime::millis(20));
    });
    const int mid = g.add_operator("mid", [] {
      return std::make_unique<DualEmitter>("mid");
    });
    const int sink = g.add_sink("sink", [] {
      return std::make_unique<HeaderSink>("sink");
    });
    g.connect(src, mid);
    g.connect(mid, sink);
    cluster_ = std::make_unique<Cluster>(&sim_, small_cluster(4));
    app_ = std::make_unique<Application>(cluster_.get(), g);
    app_->deploy();
    app_->start();
  }

  sim::Simulation sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Application> app_;
};

TEST_F(StampingTest, ProcessEmissionsInheritSourceLineage) {
  build();
  sim_.run_until(SimTime::seconds(1));
  auto& sink = static_cast<HeaderSink&>(app_->hau(2).op());
  ASSERT_GT(sink.received.size(), 10u);
  int inherited = 0;
  for (const auto& t : sink.received) {
    if (t.payload_as<IntPayload>()->value >= 0) {
      // Derived from a source tuple: lineage points at the source HAU.
      EXPECT_EQ(t.source_hau, 0u);
      EXPECT_GT(t.source_seq, 0u);
      EXPECT_GT(t.event_time, SimTime::zero());
      ++inherited;
    }
  }
  EXPECT_GT(inherited, 10);
}

TEST_F(StampingTest, TimerEmissionsStartFreshLineage) {
  build();
  sim_.run_until(SimTime::seconds(1));
  auto& sink = static_cast<HeaderSink&>(app_->hau(2).op());
  int fresh = 0;
  for (const auto& t : sink.received) {
    if (t.payload_as<IntPayload>()->value == -1) {
      EXPECT_EQ(t.source_hau, 1u) << "fresh lineage starts at the emitter";
      ++fresh;
    }
  }
  EXPECT_EQ(fresh, 1);
}

TEST_F(StampingTest, EdgeSeqsAreStrictlyIncreasingPerEdge) {
  build();
  sim_.run_until(SimTime::seconds(1));
  auto& sink = static_cast<HeaderSink&>(app_->hau(2).op());
  std::uint64_t prev = 0;
  for (const auto& t : sink.received) {
    EXPECT_GT(t.edge_seq, prev);
    prev = t.edge_seq;
  }
}

TEST(WireSizeTest, PayloadWidensDeclaredWireSize) {
  // emit_from_context widens wire_size to cover the payload's declared
  // bytes; verified through a one-hop pipeline.
  sim::Simulation sim;
  Cluster cluster(&sim, small_cluster(3));
  QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<ms::testing::CounterSource>(
        "src", SimTime::millis(10), /*tuple_bytes=*/32);  // declared small
  });
  const int sink = g.add_sink("sink", [] {
    return std::make_unique<HeaderSink>("sink");
  });
  g.connect(src, sink);
  Application app(&cluster, g);
  app.deploy();
  app.start();
  sim.run_until(SimTime::millis(300));
  auto& s = static_cast<HeaderSink&>(app.hau(1).op());
  ASSERT_FALSE(s.received.empty());
  for (const auto& t : s.received) {
    // IntPayload declares 32 bytes here; header widening adds 64.
    EXPECT_GE(t.wire_size, t.payload->byte_size());
  }
}

TEST(ChargeTest, ProcessPathChargeDelaysNextTuple) {
  // An operator that charges 50 ms per tuple processes at most ~20/s even
  // though its cost model is nearly free.
  class Charger final : public Operator {
   public:
    explicit Charger(std::string name) : Operator(std::move(name)) {
      costs().base = SimTime::micros(1);
    }
    void process(int, const Tuple& t, OperatorContext& ctx) override {
      ctx.charge(SimTime::millis(50));
      ctx.emit(0, t);
    }
    Bytes state_size() const override { return 0; }
  };
  sim::Simulation sim;
  Cluster cluster(&sim, small_cluster(4));
  QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<ms::testing::CounterSource>("src",
                                                        SimTime::millis(5));
  });
  const int ch = g.add_operator("charger", [] {
    return std::make_unique<Charger>("charger");
  });
  const int sink = g.add_sink("sink", [] {
    return std::make_unique<ms::testing::RecordingSink>("sink");
  });
  g.connect(src, ch);
  g.connect(ch, sink);
  Application app(&cluster, g);
  app.deploy();
  app.start();
  sim.run_until(SimTime::seconds(2));
  const auto processed = app.hau(1).tuples_processed();
  EXPECT_GT(processed, 30u);
  EXPECT_LT(processed, 45u);  // ~20/s, not 200/s
}

}  // namespace
}  // namespace ms::core
