#include "ft/sim_runtime.h"

namespace ms::ft {

SimRuntime::SimRuntime(core::Application* app, Hooks hooks)
    : app_(app), hooks_(std::move(hooks)) {
  MS_CHECK(app != nullptr);
}

int SimRuntime::num_units() const { return app_->num_haus(); }

bool SimRuntime::unit_is_source(int unit) const {
  return app_->hau(unit).is_source();
}

bool SimRuntime::unit_alive(int unit) const {
  return !app_->hau(unit).failed();
}

SimTime SimRuntime::now() const { return app_->simulation().now(); }

void SimRuntime::schedule_after(SimTime delay, std::function<void()> fn) {
  app_->simulation().schedule_after(delay, std::move(fn));
}

void SimRuntime::start_epoch(std::uint64_t epoch) {
  if (hooks_.start_epoch) hooks_.start_epoch(epoch);
}

void SimRuntime::commit_epoch(std::uint64_t epoch) {
  if (hooks_.commit_epoch) hooks_.commit_epoch(epoch);
}

void SimRuntime::abandon_epoch(std::uint64_t epoch) {
  if (hooks_.abandon_epoch) hooks_.abandon_epoch(epoch);
}

void SimRuntime::retransmit_epoch(std::uint64_t epoch) {
  if (hooks_.retransmit_epoch) hooks_.retransmit_epoch(epoch);
}

}  // namespace ms::ft
