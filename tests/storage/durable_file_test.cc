// The framed-artifact layer in isolation: CRC32C correctness (known-answer
// vectors, hw/sw agreement), frame round-trips per artifact kind, legacy
// (pre-checksum) passthrough, and the full corruption taxonomy — every way
// the on-disk bytes can differ from the written bytes must come back as
// kDataLoss (definitive) or kUnavailable (retryable), never as a clean read
// of wrong bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "failure/disk_fault.h"
#include "storage/durable_file.h"

namespace ms::storage {
namespace {

namespace fs = std::filesystem;
using ms::failure::DiskFaultInjector;
using ms::failure::flip_bit_in_file;
using ms::failure::truncate_file_to;

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 3));
  }
  return out;
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // The canonical CRC32C check value (RFC 3720 / Castagnoli).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // 32 zero bytes — a second published vector, sensitive to reflection bugs.
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainsAcrossSplitBuffers) {
  const auto data = payload(1037);
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (const std::size_t cut : {std::size_t{1}, std::size_t{8},
                                std::size_t{512}, data.size() - 1}) {
    const std::uint32_t first = crc32c(data.data(), cut);
    EXPECT_EQ(crc32c(data.data() + cut, data.size() - cut, first), whole)
        << "split at " << cut;
  }
}

// --- framing ---------------------------------------------------------------

TEST(DurableFileTest, FrameRoundTripsEveryKind) {
  for (const ArtifactKind kind :
       {ArtifactKind::kCheckpoint, ArtifactKind::kDelta, ArtifactKind::kManifest,
        ArtifactKind::kSourceLog, ArtifactKind::kBaseline}) {
    const auto data = payload(257);
    const auto framed = frame_artifact(kind, data.data(), data.size());
    ASSERT_EQ(framed.size(), kArtifactHeaderSize + data.size());
    std::vector<std::uint8_t> out;
    bool legacy = true;
    const Status st = unframe_artifact("mem", framed, kind, &out, &legacy);
    ASSERT_TRUE(st.is_ok()) << artifact_kind_name(kind) << ": "
                            << st.to_string();
    EXPECT_FALSE(legacy);
    EXPECT_EQ(out, data);
  }
}

TEST(DurableFileTest, EmptyPayloadRoundTrips) {
  const auto framed = frame_artifact(ArtifactKind::kCheckpoint, nullptr, 0);
  std::vector<std::uint8_t> out{1, 2, 3};
  ASSERT_TRUE(unframe_artifact("mem", framed, ArtifactKind::kCheckpoint, &out)
                  .is_ok());
  EXPECT_TRUE(out.empty());
}

TEST(DurableFileTest, LegacyFilePassesThroughVerbatim) {
  // No magic → the whole file IS the payload (pre-checksum artifact).
  const auto old = bytes_of("state written before framing existed");
  std::vector<std::uint8_t> out;
  bool legacy = false;
  ASSERT_TRUE(
      unframe_artifact("mem", old, ArtifactKind::kCheckpoint, &out, &legacy)
          .is_ok());
  EXPECT_TRUE(legacy);
  EXPECT_EQ(out, old);
}

TEST(DurableFileTest, EveryCorruptionClassIsDataLoss) {
  const auto data = payload(300);
  const auto framed =
      frame_artifact(ArtifactKind::kCheckpoint, data.data(), data.size());
  std::vector<std::uint8_t> out;

  // Wrong kind: the frame is intact but it is not the artifact asked for.
  EXPECT_EQ(unframe_artifact("mem", framed, ArtifactKind::kDelta, &out).code(),
            StatusCode::kDataLoss);

  // Truncated mid-payload: length field promises more bytes than exist.
  auto torn = framed;
  torn.resize(framed.size() - 17);
  EXPECT_EQ(
      unframe_artifact("mem", torn, ArtifactKind::kCheckpoint, &out).code(),
      StatusCode::kDataLoss);

  // Truncated mid-header.
  auto stub = framed;
  stub.resize(kArtifactHeaderSize / 2);
  EXPECT_EQ(
      unframe_artifact("mem", stub, ArtifactKind::kCheckpoint, &out).code(),
      StatusCode::kDataLoss);

  // Every single-bit flip anywhere in header or payload must be caught.
  for (const std::size_t byte :
       {std::size_t{5}, std::size_t{11}, std::size_t{17},
        kArtifactHeaderSize + 0, kArtifactHeaderSize + 150,
        framed.size() - 1}) {
    auto flipped = framed;
    flipped[byte] ^= 0x10;
    EXPECT_EQ(
        unframe_artifact("mem", flipped, ArtifactKind::kCheckpoint, &out)
            .code(),
        StatusCode::kDataLoss)
        << "bit flip in byte " << byte << " not detected";
  }

  // Trailing garbage after the payload (a torn *over*write).
  auto padded = framed;
  padded.push_back(0xAB);
  EXPECT_EQ(
      unframe_artifact("mem", padded, ArtifactKind::kCheckpoint, &out).code(),
      StatusCode::kDataLoss);
}

// --- durable I/O on real files ---------------------------------------------

TEST(DurableFileTest, AtomicWriteReadsBackAndLeavesNoTempFile) {
  const std::string dir = fresh_dir("ms_durable_atomic");
  const std::string path = dir + "/MANIFEST";
  const auto data = payload(64);
  const DurableOptions opts{SyncMode::kCommit, nullptr};
  ASSERT_TRUE(write_artifact_atomic(path, ArtifactKind::kManifest, data.data(),
                                    data.size(), opts)
                  .is_ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::vector<std::uint8_t> out;
  bool legacy = true;
  ASSERT_TRUE(
      read_artifact(path, ArtifactKind::kManifest, opts, &out, &legacy)
          .is_ok());
  EXPECT_FALSE(legacy);
  EXPECT_EQ(out, data);
}

TEST(DurableFileTest, WriteRawAtomicWritesExactImage) {
  const std::string dir = fresh_dir("ms_durable_raw");
  const std::string path = dir + "/source_0.log";
  const auto image = payload(48);
  const DurableOptions opts{SyncMode::kNone, nullptr};
  ASSERT_TRUE(write_raw_atomic(path, ArtifactKind::kSourceLog, image.data(),
                               image.size(), opts)
                  .is_ok());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(read_raw(path, ArtifactKind::kSourceLog, opts, &out).is_ok());
  EXPECT_EQ(out, image);  // no frame added
}

TEST(DurableFileTest, MissingFileIsNotFound) {
  std::vector<std::uint8_t> out;
  EXPECT_EQ(read_artifact("/nonexistent/no/such/file.ckpt",
                          ArtifactKind::kCheckpoint, DurableOptions{}, &out)
                .code(),
            StatusCode::kNotFound);
}

TEST(DurableFileTest, AtRestBitFlipIsCaughtOnRead) {
  const std::string dir = fresh_dir("ms_durable_bitrot");
  const std::string path = dir + "/op_0.ckpt";
  const auto data = payload(200);
  const DurableOptions opts{SyncMode::kNone, nullptr};
  ASSERT_TRUE(write_artifact(path, ArtifactKind::kCheckpoint, data.data(),
                             data.size(), opts)
                  .is_ok());
  ASSERT_TRUE(flip_bit_in_file(path, /*bit=*/(kArtifactHeaderSize + 99) * 8 + 3));
  std::vector<std::uint8_t> out;
  EXPECT_EQ(read_artifact(path, ArtifactKind::kCheckpoint, opts, &out).code(),
            StatusCode::kDataLoss);
}

TEST(DurableFileTest, AtRestTruncationIsCaughtOnRead) {
  const std::string dir = fresh_dir("ms_durable_trunc");
  const std::string path = dir + "/op_0.delta";
  const auto data = payload(200);
  const DurableOptions opts{SyncMode::kNone, nullptr};
  ASSERT_TRUE(write_artifact(path, ArtifactKind::kDelta, data.data(),
                             data.size(), opts)
                  .is_ok());
  ASSERT_TRUE(truncate_file_to(path, kArtifactHeaderSize + 100));
  std::vector<std::uint8_t> out;
  EXPECT_EQ(read_artifact(path, ArtifactKind::kDelta, opts, &out).code(),
            StatusCode::kDataLoss);
}

// --- fault injection through the injector ----------------------------------

TEST(DiskFaultTest, TornWriteReportsSuccessButDamagesTheFile) {
  const std::string dir = fresh_dir("ms_fault_torn");
  const std::string path = dir + "/op_0.ckpt";
  DiskFaultInjector faults;
  faults.arm_write(ArtifactKind::kCheckpoint, WriteFault::kTorn,
                   /*offset=*/kArtifactHeaderSize + 10);
  const DurableOptions opts{SyncMode::kNone, &faults};
  const auto data = payload(128);
  // The lying disk: the write "succeeds"...
  ASSERT_TRUE(write_artifact(path, ArtifactKind::kCheckpoint, data.data(),
                             data.size(), opts)
                  .is_ok());
  EXPECT_EQ(faults.injected(), 1);
  // ...and only the verify-on-read catches it.
  std::vector<std::uint8_t> out;
  EXPECT_EQ(read_artifact(path, ArtifactKind::kCheckpoint, opts, &out).code(),
            StatusCode::kDataLoss);
}

TEST(DiskFaultTest, WriteErrorIsRetryable) {
  const std::string dir = fresh_dir("ms_fault_werr");
  DiskFaultInjector faults;
  faults.arm_write(ArtifactKind::kManifest, WriteFault::kError);
  const DurableOptions opts{SyncMode::kNone, &faults};
  const auto data = payload(32);
  EXPECT_EQ(write_artifact_atomic(dir + "/MANIFEST", ArtifactKind::kManifest,
                                  data.data(), data.size(), opts)
                .code(),
            StatusCode::kUnavailable);
  // One-shot by default: the retry goes through.
  EXPECT_TRUE(write_artifact_atomic(dir + "/MANIFEST", ArtifactKind::kManifest,
                                    data.data(), data.size(), opts)
                  .is_ok());
}

TEST(DiskFaultTest, CrashBeforeRenameLeavesNoCommittedFile) {
  const std::string dir = fresh_dir("ms_fault_prerename");
  const std::string path = dir + "/MANIFEST";
  DiskFaultInjector faults;
  bool crashed = false;
  faults.set_crash_hook([&crashed] { crashed = true; });
  faults.arm_write(ArtifactKind::kManifest, WriteFault::kCrashBeforeRename);
  const DurableOptions opts{SyncMode::kNone, &faults};
  const auto data = payload(32);
  EXPECT_FALSE(write_artifact_atomic(path, ArtifactKind::kManifest,
                                     data.data(), data.size(), opts)
                   .is_ok());
  EXPECT_TRUE(crashed);
  EXPECT_FALSE(fs::exists(path)) << "commit point was never reached";
}

TEST(DiskFaultTest, CrashAfterRenameLeavesTheCommittedFile) {
  const std::string dir = fresh_dir("ms_fault_postrename");
  const std::string path = dir + "/MANIFEST";
  DiskFaultInjector faults;
  bool crashed = false;
  faults.set_crash_hook([&crashed] { crashed = true; });
  faults.arm_write(ArtifactKind::kManifest, WriteFault::kCrashAfterRename);
  const DurableOptions opts{SyncMode::kNone, &faults};
  const auto data = payload(32);
  // The writer dies believing the commit failed...
  EXPECT_FALSE(write_artifact_atomic(path, ArtifactKind::kManifest,
                                     data.data(), data.size(), opts)
                   .is_ok());
  EXPECT_TRUE(crashed);
  // ...but the rename landed: the artifact is durable and verifies clean.
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(
      read_artifact(path, ArtifactKind::kManifest, DurableOptions{}, &out)
          .is_ok());
  EXPECT_EQ(out, data);
}

TEST(DiskFaultTest, ReadFaultsMatchPathAndOccurrence) {
  const std::string dir = fresh_dir("ms_fault_read");
  const std::string a = dir + "/op_0.ckpt";
  const std::string b = dir + "/op_1.ckpt";
  const auto data = payload(90);
  const DurableOptions clean{SyncMode::kNone, nullptr};
  ASSERT_TRUE(write_artifact(a, ArtifactKind::kCheckpoint, data.data(),
                             data.size(), clean)
                  .is_ok());
  ASSERT_TRUE(write_artifact(b, ArtifactKind::kCheckpoint, data.data(),
                             data.size(), clean)
                  .is_ok());

  DiskFaultInjector faults;
  DiskFaultInjector::Options match;
  match.path_contains = "op_1";
  faults.arm_read(ArtifactKind::kCheckpoint, ReadFault::kBitFlip,
                  /*offset=*/(kArtifactHeaderSize + 5) * 8, match);
  const DurableOptions opts{SyncMode::kNone, &faults};
  std::vector<std::uint8_t> out;
  // op_0 does not match the rule and reads clean.
  EXPECT_TRUE(read_artifact(a, ArtifactKind::kCheckpoint, opts, &out).is_ok());
  // op_1 takes the in-flight bit flip (the file itself stays intact).
  EXPECT_EQ(read_artifact(b, ArtifactKind::kCheckpoint, opts, &out).code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(read_artifact(b, ArtifactKind::kCheckpoint, clean, &out).is_ok());
}

TEST(DiskFaultTest, StickyRuleFiresUntilCleared) {
  const std::string dir = fresh_dir("ms_fault_sticky");
  const std::string path = dir + "/op_0.ckpt";
  const auto data = payload(40);
  const DurableOptions clean{SyncMode::kNone, nullptr};
  ASSERT_TRUE(write_artifact(path, ArtifactKind::kCheckpoint, data.data(),
                             data.size(), clean)
                  .is_ok());
  DiskFaultInjector faults;
  DiskFaultInjector::Options match;
  match.sticky = true;
  faults.arm_read(ArtifactKind::kCheckpoint, ReadFault::kError, 0, match);
  const DurableOptions opts{SyncMode::kNone, &faults};
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(read_artifact(path, ArtifactKind::kCheckpoint, opts, &out).code(),
              StatusCode::kUnavailable);
  }
  faults.clear();
  EXPECT_TRUE(read_artifact(path, ArtifactKind::kCheckpoint, opts, &out).is_ok());
  EXPECT_GE(faults.injected(), 3);
}

// --- append files ----------------------------------------------------------

TEST(AppendFileTest, AppendsAccumulateAndSurviveReopen) {
  const std::string dir = fresh_dir("ms_append");
  const std::string path = dir + "/source_0.log";
  const DurableOptions opts{SyncMode::kAlways, nullptr};
  {
    AppendFile f;
    ASSERT_TRUE(f.open(path));
    ASSERT_TRUE(f.append("abc", 3, opts));
    ASSERT_TRUE(f.append("defg", 4, opts));
  }
  {
    AppendFile f;
    ASSERT_TRUE(f.open(path));  // reopen appends, never truncates
    ASSERT_TRUE(f.append("hi", 2, opts));
  }
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(read_raw(path, ArtifactKind::kSourceLog, DurableOptions{}, &out)
                  .is_ok());
  EXPECT_EQ(out, bytes_of("abcdefghi"));
}

TEST(AppendFileTest, TornAppendReportsFailureAfterPartialWrite) {
  const std::string dir = fresh_dir("ms_append_torn");
  const std::string path = dir + "/source_0.log";
  DiskFaultInjector faults;
  faults.arm_write(ArtifactKind::kSourceLog, WriteFault::kTorn, /*offset=*/2);
  const DurableOptions opts{SyncMode::kNone, &faults};
  AppendFile f;
  ASSERT_TRUE(f.open(path));
  EXPECT_FALSE(f.append("abcdef", 6, opts));  // torn: only 2 bytes landed
  EXPECT_TRUE(f.append("XYZ", 3, opts));      // one-shot rule is spent
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(read_raw(path, ArtifactKind::kSourceLog, DurableOptions{}, &out)
                  .is_ok());
  EXPECT_EQ(out, bytes_of("abXYZ"));
}

}  // namespace
}  // namespace ms::storage
