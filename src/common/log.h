// Lightweight leveled logging. Benchmarks run with kWarn to keep output
// clean; tests that exercise failure paths may raise the level to kDebug.
#pragma once

#include <cstdarg>
#include <string>

namespace ms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. `tag` names the subsystem ("ft", "sim", ...).
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace ms

#define MS_LOG_DEBUG(tag, ...) ::ms::logf(::ms::LogLevel::kDebug, tag, __VA_ARGS__)
#define MS_LOG_INFO(tag, ...) ::ms::logf(::ms::LogLevel::kInfo, tag, __VA_ARGS__)
#define MS_LOG_WARN(tag, ...) ::ms::logf(::ms::LogLevel::kWarn, tag, __VA_ARGS__)
#define MS_LOG_ERROR(tag, ...) ::ms::logf(::ms::LogLevel::kError, tag, __VA_ARGS__)
