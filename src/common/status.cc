#include "common/status.h"

namespace ms {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

namespace internal {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& extra) {
  std::fprintf(stderr, "MS_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ms
