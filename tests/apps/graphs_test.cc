// Structural tests for the three applications' query networks against the
// paper's Figs. 2-4: 55 operators each, the documented fan-in/fan-out.
#include <gtest/gtest.h>

#include "apps/bcp.h"
#include "apps/signalguru.h"
#include "apps/tmi.h"

namespace ms::apps {
namespace {

TEST(TmiGraphTest, Has55OperatorsAndValidates) {
  const auto g = build_tmi();
  EXPECT_EQ(g.num_operators(), 55);
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.sources().size(), 10u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(TmiGraphTest, GoogleMapConnectsToAllGroups) {
  // Fig. 2: "Each GoogleMap operator connects to all Group operators."
  const auto g = build_tmi();
  const auto layout = tmi_layout();
  for (const int m : layout.maps) {
    EXPECT_EQ(g.out_degree(m), 10) << "M vertex " << m;
  }
  for (const int grp : layout.groups) {
    EXPECT_EQ(g.in_degree(grp), 12) << "G vertex " << grp;
  }
}

TEST(TmiGraphTest, LayoutMatchesVertexNames) {
  const auto g = build_tmi();
  const auto layout = tmi_layout();
  EXPECT_EQ(g.op(layout.sources[0]).name, "S0");
  EXPECT_EQ(g.op(layout.pairs[11]).name, "P11");
  EXPECT_EQ(g.op(layout.maps[0]).name, "M0");
  EXPECT_EQ(g.op(layout.kmeans[9]).name, "A9");
  EXPECT_EQ(g.op(layout.sink).name, "K");
  EXPECT_TRUE(g.op(layout.sink).is_sink);
}

TEST(TmiGraphTest, KmeansFeedSink) {
  const auto g = build_tmi();
  const auto layout = tmi_layout();
  EXPECT_EQ(g.in_degree(layout.sink), 10);
  for (const int a : layout.kmeans) EXPECT_EQ(g.out_degree(a), 1);
}

TEST(BcpGraphTest, Has55OperatorsAndValidates) {
  const auto g = build_bcp();
  EXPECT_EQ(g.num_operators(), 55);
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.sources().size(), 8u);  // 4 camera + 4 sensor
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(BcpGraphTest, DispatcherFeedsCountersAndHistorical) {
  const auto g = build_bcp();
  const auto layout = bcp_layout();
  for (const int d : layout.dispatchers) {
    EXPECT_EQ(g.out_degree(d), 5);  // 4 counters + H
  }
  for (const int h : layout.historical) {
    EXPECT_EQ(g.in_degree(h), 1);
    EXPECT_EQ(g.out_degree(h), 1);
  }
  for (const int b : layout.boarding) {
    EXPECT_EQ(g.in_degree(b), 5);  // 4 counters + H
  }
}

TEST(BcpGraphTest, SensorChainsFanOutToTwoModels) {
  const auto g = build_bcp();
  const auto layout = bcp_layout();
  for (const int n : layout.noise_filters) {
    EXPECT_EQ(g.out_degree(n), 2);  // arrival + alighting
  }
  for (const int j : layout.joins) {
    EXPECT_EQ(g.in_degree(j), 6);  // 2 stops x (B, A, L)
  }
}

TEST(BcpGraphTest, LayoutNames) {
  const auto g = build_bcp();
  const auto layout = bcp_layout();
  EXPECT_EQ(g.op(layout.camera_sources[0]).name, "S0");
  EXPECT_EQ(g.op(layout.sensor_sources[0]).name, "S4");
  EXPECT_EQ(g.op(layout.counters[15]).name, "C15");
  EXPECT_EQ(g.op(layout.historical[3]).name, "H3");
  EXPECT_EQ(g.op(layout.joins[1]).name, "J2");
  EXPECT_EQ(g.op(layout.sink).name, "K");
}

TEST(SgGraphTest, Has55OperatorsAndValidates) {
  const auto g = build_signalguru();
  EXPECT_EQ(g.num_operators(), 55);
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.sources().size(), 4u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(SgGraphTest, FilterChainsAreLinear) {
  const auto g = build_signalguru();
  const auto layout = signalguru_layout();
  for (const int c : layout.color_filters) {
    EXPECT_EQ(g.in_degree(c), 1);
    EXPECT_EQ(g.out_degree(c), 1);
  }
  for (const int a : layout.shape_filters) {
    EXPECT_EQ(g.in_degree(a), 1);
    EXPECT_EQ(g.out_degree(a), 1);
  }
  for (const int m : layout.motion_filters) {
    EXPECT_EQ(g.in_degree(m), 1);
    EXPECT_EQ(g.out_degree(m), 1);
  }
}

TEST(SgGraphTest, VotersAggregateThreeChains) {
  const auto g = build_signalguru();
  const auto layout = signalguru_layout();
  for (const int v : layout.voters) EXPECT_EQ(g.in_degree(v), 3);
  for (const int p : layout.predictors) EXPECT_EQ(g.in_degree(p), 2);
}

TEST(SgGraphTest, LayoutNames) {
  const auto g = build_signalguru();
  const auto layout = signalguru_layout();
  EXPECT_EQ(g.op(layout.sources[3]).name, "S3");
  EXPECT_EQ(g.op(layout.motion_filters[11]).name, "M11");
  EXPECT_EQ(g.op(layout.voters[0]).name, "V0");
  EXPECT_EQ(g.op(layout.predictors[1]).name, "P1");
}

}  // namespace
}  // namespace ms::apps
