// Bus Capacity Prediction (BCP) — paper §II-B2, Fig. 3.
//
// 55 operators across two input modalities:
//  - camera side: 4 camera sources S0–S3, dispatchers D0–D3, 16 people
//    counters C0–C15 (four per dispatcher), 4 historical-image operators
//    H0–H3 (accumulate successive frames per camera to disambiguate
//    occlusions, purge on a bus arrival — BCP's fluctuating state of
//    Fig. 5b), 4 boarding-prediction models B0–B3;
//  - sensor side: 4 on-vehicle infrared sources S4–S7, noise filters N0–N3,
//    arrival-time predictors A0–A3, alighting predictors L0–L3;
//  - fused: joins J0/J2, groups G0/G1, crowdedness predictors P0/P1, sink K.
#pragma once

#include "core/query_graph.h"

namespace ms::apps {

struct BcpConfig {
  int num_stops = 4;  // one camera/dispatcher/H/B column per stop
  /// Frames per second per camera source (a source aggregates the cameras
  /// of one stop).
  double frames_per_second = 4.0;
  /// Declared bytes per camera frame (the raw image the real system ships).
  Bytes frame_bytes = 192_KB;
  /// Occupancy-grid resolution of the synthetic frames.
  int grid_width = 48;
  int grid_height = 32;
  /// People waiting at a stop grow over time and drop at a bus arrival.
  double arrivals_per_person_second = 0.08;  // growth rate
  /// Mean time between bus arrivals at a stop.
  SimTime bus_interarrival_mean = SimTime::seconds(150);
  SimTime bus_interarrival_min = SimTime::seconds(60);
  /// Infrared sensor readings per second per bus source.
  double sensor_rate = 5.0;
  Bytes sensor_bytes = 128;

  /// Per-tuple operator costs (calibrated by the benchmark harness).
  SimTime dispatcher_cost = SimTime::micros(20);
  SimTime counter_cost = SimTime::micros(300);
  SimTime historical_cost = SimTime::micros(150);
};

/// Build the Fig. 3 query network.
core::QueryGraph build_bcp(const BcpConfig& config = {});

struct BcpLayout {
  std::vector<int> camera_sources;  // S0..S3
  std::vector<int> dispatchers;     // D0..D3
  std::vector<int> counters;        // C0..C15
  std::vector<int> historical;      // H0..H3 — the dynamic HAUs
  std::vector<int> boarding;        // B0..B3
  std::vector<int> sensor_sources;  // S4..S7
  std::vector<int> noise_filters;   // N0..N3
  std::vector<int> arrival;         // A0..A3
  std::vector<int> alighting;       // L0..L3
  std::vector<int> joins;           // J0, J2
  std::vector<int> groups;          // G0, G1
  std::vector<int> predictors;      // P0, P1
  int sink = -1;                    // K
};
BcpLayout bcp_layout(const BcpConfig& config = {});

}  // namespace ms::apps
