// Standard operator library: map/filter/route/fan-out/union/tumbling
// aggregate, including checkpoint round trips and delta tracking.
#include "core/stdops.h"

#include <gtest/gtest.h>

#include "../testing/test_ops.h"
#include "core/application.h"

namespace ms::core {
namespace {

using ms::testing::CounterSource;
using ms::testing::IntPayload;
using ms::testing::RecordingSink;
using ms::testing::small_cluster;

Tuple int_tuple(std::int64_t v) {
  Tuple t;
  t.wire_size = 64;
  t.payload = std::make_shared<IntPayload>(v);
  return t;
}

std::int64_t value_of(const Tuple& t) {
  return t.payload_as<IntPayload>()->value;
}

class StdOpsPipelineTest : public ::testing::Test {
 protected:
  void run(const QueryGraph& g, SimTime duration, int nodes = 8) {
    cluster_ = std::make_unique<Cluster>(&sim_, small_cluster(nodes));
    app_ = std::make_unique<Application>(cluster_.get(), g);
    app_->deploy();
    app_->start();
    sim_.run_until(duration);
  }

  sim::Simulation sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Application> app_;
};

TEST_F(StdOpsPipelineTest, MapTransformsValues) {
  QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<CounterSource>("src", SimTime::millis(10));
  });
  const int map = g.add_operator("x10", [] {
    return std::make_unique<MapOperator>("x10", [](const Tuple& t,
                                                   OperatorContext&) {
      return int_tuple(value_of(t) * 10);
    });
  });
  const int sink = g.add_sink("sink", [] {
    return std::make_unique<RecordingSink>("sink");
  });
  g.connect(src, map);
  g.connect(map, sink);
  run(g, SimTime::seconds(1));
  auto& s = static_cast<RecordingSink&>(app_->hau(2).op());
  ASSERT_GT(s.values.size(), 50u);
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    EXPECT_EQ(s.values[i], static_cast<std::int64_t>(i) * 10);
  }
}

TEST_F(StdOpsPipelineTest, FilterDropsAndCounts) {
  QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<CounterSource>("src", SimTime::millis(10));
  });
  const int f = g.add_operator("even", [] {
    return std::make_unique<FilterOperator>("even", [](const Tuple& t) {
      return value_of(t) % 2 == 0;
    });
  });
  const int sink = g.add_sink("sink", [] {
    return std::make_unique<RecordingSink>("sink");
  });
  g.connect(src, f);
  g.connect(f, sink);
  run(g, SimTime::seconds(1));
  auto& s = static_cast<RecordingSink&>(app_->hau(2).op());
  ASSERT_GT(s.values.size(), 20u);
  for (const auto v : s.values) EXPECT_EQ(v % 2, 0);
  auto& filt = static_cast<FilterOperator&>(app_->hau(1).op());
  EXPECT_NEAR(static_cast<double>(filt.dropped()),
              static_cast<double>(s.values.size()), 3.0);
}

TEST_F(StdOpsPipelineTest, KeyRoutePartitionsByKey) {
  QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<CounterSource>("src", SimTime::millis(5));
  });
  const int route = g.add_operator("route", [] {
    return std::make_unique<KeyRouteOperator>("route", [](const Tuple& t) {
      return static_cast<std::uint64_t>(value_of(t));
    });
  });
  const int sink = g.add_sink("sink", [] {
    return std::make_unique<RecordingSink>("sink");
  });
  g.connect(src, route);
  g.connect(route, sink);  // port 0: even keys? (2 ports below)
  g.connect(route, sink);  // port 1
  run(g, SimTime::seconds(1));
  auto& s = static_cast<RecordingSink&>(app_->hau(2).op());
  for (const auto& [port, values] : s.by_port) {
    for (const auto v : values) {
      EXPECT_EQ(v % 2, port) << "value routed to wrong partition";
    }
  }
  EXPECT_EQ(s.by_port.size(), 2u);
}

TEST_F(StdOpsPipelineTest, FanOutDuplicatesToUnion) {
  QueryGraph g;
  const int src = g.add_source("src", [] {
    return std::make_unique<CounterSource>("src", SimTime::millis(10));
  });
  const int fan = g.add_operator("fan", [] {
    return std::make_unique<FanOutOperator>("fan");
  });
  const int u = g.add_operator("union", [] {
    return std::make_unique<UnionOperator>("union");
  });
  const int sink = g.add_sink("sink", [] {
    return std::make_unique<RecordingSink>("sink");
  });
  g.connect(src, fan);
  g.connect(fan, u);
  g.connect(fan, u);
  g.connect(fan, u);
  g.connect(u, sink);
  run(g, SimTime::seconds(1));
  auto& s = static_cast<RecordingSink&>(app_->hau(3).op());
  // Three copies of each value (modulo a small in-flight tail).
  std::map<std::int64_t, int> counts;
  for (const auto v : s.values) ++counts[v];
  int complete = 0;
  for (const auto& [v, c] : counts) {
    EXPECT_LE(c, 3);
    if (c == 3) ++complete;
  }
  EXPECT_GT(complete, 50);
}

TEST_F(StdOpsPipelineTest, TumblingAggregateSumsPerKeyAndClears) {
  // The RecordingSink expects IntPayload, so a map stage converts each
  // window summary into its count.
  QueryGraph g2;
  const int src2 = g2.add_source("src", [] {
    return std::make_unique<CounterSource>("src", SimTime::millis(2));
  });
  const int agg2 = g2.add_operator("agg", [] {
    return std::make_unique<TumblingAggregateOperator>(
        "agg", SimTime::seconds(1),
        [](const Tuple& t) { return static_cast<std::uint64_t>(value_of(t) % 4); },
        [](const Tuple&) { return 1.0; });
  });
  const int to_int = g2.add_operator("to_int", [] {
    return std::make_unique<MapOperator>(
        "to_int", [](const Tuple& t, OperatorContext&) {
          const auto* s = t.payload_as<TumblingAggregateOperator::Summary>();
          return int_tuple(s != nullptr ? s->count : -1);
        });
  });
  const int sink2 = g2.add_sink("sink", [] {
    return std::make_unique<RecordingSink>("sink");
  });
  g2.connect(src2, agg2);
  g2.connect(agg2, to_int);
  g2.connect(to_int, sink2);
  run(g2, SimTime::seconds(3) + SimTime::millis(200));

  auto& aggregate = static_cast<TumblingAggregateOperator&>(app_->hau(1).op());
  EXPECT_GE(aggregate.windows_completed(), 3);
  // Each flush emitted 4 per-key counts of ~125 tuples (500/s over 4 keys).
  auto& s = static_cast<RecordingSink&>(app_->hau(3).op());
  ASSERT_GE(s.values.size(), 8u);
  for (const auto v : s.values) {
    EXPECT_GT(v, 80);
    EXPECT_LT(v, 160);
  }
}

TEST(StdOpsStateTest, TumblingAggregateCheckpointRoundTrip) {
  TumblingAggregateOperator op(
      "agg", SimTime::seconds(1),
      [](const Tuple& t) { return static_cast<std::uint64_t>(value_of(t)); },
      [](const Tuple&) { return 2.5; });
  // Feed directly (context-free path: process ignores ctx).
  class NullCtx final : public OperatorContext {
   public:
    SimTime now() const override { return SimTime::zero(); }
    Rng& rng() override { return rng_; }
    void emit(int, Tuple&&) override {}
    int num_out_ports() const override { return 1; }
    int num_in_ports() const override { return 1; }
    void schedule(SimTime, std::function<void(OperatorContext&)>) override {}
    void charge(SimTime) override {}
    int hau_id() const override { return 0; }

   private:
    Rng rng_{1};
  } ctx;
  for (int i = 0; i < 10; ++i) op.process(0, int_tuple(i % 3), ctx);
  EXPECT_EQ(op.keys_in_window(), 3u);
  const Bytes size = op.state_size();
  EXPECT_EQ(size, 3 * 64);

  BinaryWriter w;
  op.serialize_state(w);
  TumblingAggregateOperator restored(
      "agg", SimTime::seconds(1),
      [](const Tuple& t) { return static_cast<std::uint64_t>(value_of(t)); },
      [](const Tuple&) { return 2.5; });
  BinaryReader r(w.data());
  restored.deserialize_state(r);
  EXPECT_EQ(restored.keys_in_window(), 3u);
  EXPECT_EQ(restored.state_size(), size);
}

TEST(StdOpsStateTest, TumblingAggregateDeltaTracking) {
  TumblingAggregateOperator op(
      "agg", SimTime::seconds(1),
      [](const Tuple& t) { return static_cast<std::uint64_t>(value_of(t)); },
      [](const Tuple&) { return 1.0; });
  class NullCtx final : public OperatorContext {
   public:
    SimTime now() const override { return SimTime::zero(); }
    Rng& rng() override { return rng_; }
    void emit(int, Tuple&&) override {}
    int num_out_ports() const override { return 1; }
    int num_in_ports() const override { return 1; }
    void schedule(SimTime, std::function<void(OperatorContext&)>) override {}
    void charge(SimTime) override {}
    int hau_id() const override { return 0; }

   private:
    Rng rng_{1};
  } ctx;
  for (int i = 0; i < 5; ++i) op.process(0, int_tuple(i), ctx);
  EXPECT_EQ(op.state_delta_size(), op.state_size());
  op.mark_checkpointed();
  EXPECT_EQ(op.state_delta_size(), 0);
  op.process(0, int_tuple(99), ctx);
  EXPECT_GT(op.state_delta_size(), 0);
  EXPECT_LE(op.state_delta_size(), op.state_size());
}

}  // namespace
}  // namespace ms::core
