# Empty dependencies file for fig10_profiling.
# This may be replaced when dependencies are built.
