file(REMOVE_RECURSE
  "CMakeFiles/application_aware.dir/application_aware.cpp.o"
  "CMakeFiles/application_aware.dir/application_aware.cpp.o.d"
  "application_aware"
  "application_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
