// Real-threads execution engine.
//
// Runs a core::QueryGraph inside one process with actual threads — the
// library's "engine mode", used by the quickstart example and as an
// existence proof that the Operator API is execution-agnostic:
//
//  - one worker thread per operator, bounded MPSC queue per in-edge
//    (blocking enqueue = backpressure);
//  - batched transport: emits accumulate in per-out-edge buffers and flush
//    to the downstream queue under a single lock (on the max_batch
//    watermark, on operator return, and before any token is forwarded);
//    workers drain their whole pending queue under one lock and process
//    the drained run lock-free; condition-variable notifies fire only on
//    empty→non-empty (and full→capacity-available) transitions;
//  - a timer thread drives OperatorContext::schedule (source emission,
//    windows);
//  - checkpoint *mechanisms*, not checkpoint *policy*: the engine aligns
//    Chandy-Lamport tokens, serializes operator state at the aligned cut,
//    taps source emissions for log preservation, and replays logged tuples
//    after a restore — but it owns no files, no epochs-in-flight bookkeeping
//    and no schedule. The protocol (when to checkpoint, where snapshots go,
//    how recovery proceeds) lives behind ft::Runtime in ft/rt_runtime.*,
//    which drives these primitives exactly like MsScheme drives the
//    simulator. Snapshot serialization reuses pooled buffers sized by the
//    previous epoch, so steady-state checkpoints allocate nothing on the
//    data path.
//
// Invariants preserved by batching (see DESIGN.md §5c):
//  - per-edge FIFO: tuples emitted on one out-edge arrive downstream in
//    emit order, for every max_batch setting;
//  - token flush barrier: all output produced before a token is forwarded
//    is flushed ahead of the token, so a checkpoint taken mid-batch
//    captures exactly the pre-token tuples on every edge;
//  - source-boundary exactness: source emissions are tapped and counted
//    under the same per-operator mutex that guards snapshot serialization
//    (timer-context flushes happen inside that mutex too), so the boundary
//    recorded in a source's Snapshot equals the number of tapped tuples
//    that are upstream of the token on every out-edge — the replay cursor
//    recovery needs;
//  - max_batch = 1 reproduces the seed's per-tuple delivery (the escape
//    hatch the sim-vs-engine equivalence tests pin).
//
// The engine is deliberately small: it reuses the exact Operator subclasses
// the simulator runs, so every application in src/apps also runs on real
// threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/buffer_pool.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/query_graph.h"
#include "core/tuple.h"

namespace ms::rt {

struct RtConfig {
  std::size_t queue_capacity = 4096;
  /// Upper bound on tuples accumulated per out-edge before a flush to the
  /// downstream queue. 64 is the measured sweet spot on the chain/diamond
  /// micro-benchmarks (see DESIGN.md §5c); 1 disables batching and
  /// reproduces per-tuple delivery exactly.
  std::size_t max_batch = 64;
  std::size_t helper_threads = 2;
  std::uint64_t seed = 0x5eedULL;
  /// Optional protocol trace sink. Snapshot spans land on the engine's
  /// trace tracks (trace_track::kEnginePid; tid 0 is the checkpoint driver,
  /// tid i+1 is operator i). The recorder is mutex-guarded, so worker and
  /// helper threads emit concurrently.
  TraceRecorder* trace = nullptr;
  /// Optional live metrics sink: rt.* counters and per-operator queue-depth
  /// gauges (rt.op.<id>.queue_depth), updated from the worker threads.
  MetricsRegistry* metrics = nullptr;
};

/// When an aligned operator's snapshot is handed to the sink relative to the
/// token being forwarded downstream.
///  - kSync: on the worker thread, *before* the token moves on — the sink's
///    write is durable before any downstream effect exists (the engine
///    analogue of MS-src's synchronous write).
///  - kAsync: the worker serializes in memory, forwards the token at once,
///    and a helper thread invokes the sink — the thread-level analogue of
///    the paper's fork/copy-on-write helper (MS-src+ap).
enum class SnapshotMode { kSync, kAsync };

/// One operator's state captured at a token-aligned cut (or by
/// snapshot_now()). `data` is borrowed: valid only for the duration of the
/// SnapshotSink call — copy or write it out before returning.
struct Snapshot {
  int op = 0;
  std::uint64_t epoch = 0;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  /// Sources only (0 otherwise): number of tuples this source had emitted —
  /// and the tap had logged — strictly before this snapshot. Every one of
  /// them is upstream of the token on every out-edge (flush barrier), so
  /// this is the epoch's replay boundary.
  std::uint64_t source_boundary = 0;
  /// Sources only: the lineage sequence counter at the boundary; restoring
  /// it prevents replayed and fresh tuples from colliding on tuple ids.
  std::uint64_t source_next_seq = 0;
};

/// Receives every Snapshot. May be called concurrently from several worker
/// or helper threads; must be installed before start().
using SnapshotSink = std::function<void(const Snapshot&)>;

/// Observes every tuple a source operator emits, before it is dispatched
/// downstream — the hook source-log preservation hangs off ("durable before
/// dispatch"). Runs under the source's per-operator mutex, on whichever
/// thread is emitting.
using SourceTap = std::function<void(int op, int out_port, const core::Tuple&)>;

/// Protocol instrumentation points on the engine's checkpoint mechanisms.
enum class ProtoPoint { kTokenArrived, kAligned, kSerializeStart, kSerializeDone };
using ProtoProbe = std::function<void(ProtoPoint, int op, std::uint64_t epoch)>;

class RtEngine {
 public:
  RtEngine(const core::QueryGraph& graph, RtConfig config);
  ~RtEngine();

  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  /// start()/stop() may cycle: recovery stops the engine, restores operator
  /// state, and starts it again (on_open re-arms source timers from the
  /// restored state). Timers and token alignment are reset on every start.
  void start();

  /// Stop source timers, drain all queues, join all workers. Pending
  /// asynchronous snapshot deliveries complete before stop() returns.
  void stop();

  // --- checkpoint/recovery primitives (policy-free; see ft/rt_runtime.*) ---

  /// Install the snapshot receiver / source-emission tap / protocol probe.
  /// All three must be set (or left unset) before start().
  void set_snapshot_sink(SnapshotSink sink) { sink_ = std::move(sink); }
  void set_source_tap(SourceTap tap) { source_tap_ = std::move(tap); }
  void set_proto_probe(ProtoProbe probe) { proto_probe_ = std::move(probe); }

  /// Inject epoch `epoch`'s token at every source and return immediately;
  /// alignment and snapshot delivery proceed on the worker/helper threads.
  /// Fails (kFailedPrecondition) when not running or no sink is installed,
  /// and (kUnavailable) while a previous epoch is still aligning.
  Status begin_epoch(std::uint64_t epoch, SnapshotMode mode);

  /// True while any operator of the last begin_epoch() has not yet delivered
  /// its snapshot.
  bool epoch_in_flight() const { return align_pending_.load() != 0; }

  /// Snapshot one operator immediately on the calling thread (no tokens, no
  /// cut alignment) — the independent-checkpoint primitive the baseline
  /// scheme uses. Requires running and an installed sink.
  Status snapshot_now(int op, std::uint64_t epoch);

  /// Replace an operator's state from serialized bytes (clear_state, then
  /// deserialize unless `bytes` is empty). Requires the engine stopped.
  Status restore_operator(int op, const std::vector<std::uint8_t>& bytes);

  /// Reset a source's emission cursor after a restore: `next_seq` is the
  /// lineage sequence to continue from, `emitted` the tap count (log length)
  /// to continue from. Requires the engine stopped and `op` a source.
  Status set_source_progress(int op, std::uint64_t next_seq,
                             std::uint64_t emitted);

  /// Re-deliver a preserved tuple on one of `op`'s out-edges, bypassing the
  /// operator (and the tap — the tuple is already logged). Valid on a
  /// stopped engine: recovery enqueues the whole preserved suffix before
  /// start() so live emissions land strictly behind every replayed tuple.
  Status replay_downstream(int op, int out_port, core::Tuple tuple);

  /// Control-plane timer on the engine's timer thread (the protocol layer's
  /// clock). Callbacks scheduled after stop() begins are dropped; timers do
  /// not survive a stop()/start() cycle.
  void run_after(SimTime delay, std::function<void()> fn);

  // --- introspection ---

  int num_operators() const { return static_cast<int>(workers_.size()); }
  bool op_is_source(int op) const {
    return workers_[static_cast<std::size_t>(op)]->is_source;
  }
  /// Declared state size of one operator, taken under its operator mutex —
  /// safe to call from the timer thread (AA state sampling).
  Bytes op_state_size(int op) const;

  std::int64_t tuples_processed(int op) const;
  std::int64_t sink_tuples() const { return sink_tuples_.load(); }
  core::Operator& op(int id) { return *workers_[static_cast<std::size_t>(id)]->op; }
  bool running() const { return running_.load(); }

  /// Total wall-clock the engine has been running.
  SimTime uptime() const;

 private:
  struct Worker;
  class RtContext;
  friend class RtContext;

  /// One transport unit: a single tuple (max_batch == 1), a checkpoint
  /// token, or a whole batch of tuples moved in as one entry. Batch
  /// granularity is the point — a 64-tuple flush costs one vector move and
  /// one queue push, not 64 of each.
  using Slot = std::variant<core::Tuple, core::Token, std::vector<core::Tuple>>;

  struct QueueItem {
    int in_port = 0;
    Slot slot;
  };

  void worker_loop(Worker& w);
  void deliver(int op, int in_port, core::StreamItem item);
  /// Enqueue a run of tuples for one in-edge as a single queue entry under
  /// a single lock. Consumes `batch` (leaves it empty). Blocks until the
  /// queue has spare tuple capacity; a batch is never split, so occupancy
  /// may overshoot queue_capacity by up to max_batch - 1 tuples — the
  /// backpressure bound is queue_capacity + max_batch, which keeps flushes
  /// O(1) and per-edge FIFO trivially intact.
  void deliver_batch(int op, int in_port, std::vector<core::Tuple>&& batch);
  void snapshot_and_forward_token(Worker& w, const core::Token& token);
  /// Serialize `w`'s operator under its already-held op_mu and hand the
  /// bytes to the sink (kSync/snapshot_now: on this thread; kAsync: on a
  /// helper). Decrements align_pending_ when `aligned`.
  void capture_snapshot(Worker& w, std::uint64_t epoch, SnapshotMode mode,
                        bool aligned);
  void emit_proto(ProtoPoint point, int op, std::uint64_t epoch) {
    if (proto_probe_) proto_probe_(point, op, epoch);
  }
  void timer_loop();
  void schedule_timer(SimTime delay, std::function<void()> fn);
  SimTime now() const;

  struct Worker {
    int id = 0;
    std::unique_ptr<core::Operator> op;
    bool is_source = false;
    bool is_sink = false;
    std::vector<std::pair<int, int>> out_edges;  // (target op, their in port)
    int num_in_ports = 0;

    /// Serializes *operator execution* — process()/serialize_state() on the
    /// worker thread versus schedule() callbacks (source emission, windows)
    /// on the timer thread versus on_open() on the starter. Without it a
    /// token-aligned snapshot can serialize source state while a timer tick
    /// is mutating it. Taken per drained queue entry (batch granularity),
    /// so the uncontended cost is one lock per batch, not per tuple. Never
    /// held while waiting on queue capacity of the *same* worker; holding
    /// it across downstream delivery cannot deadlock because the query
    /// graph is a DAG.
    std::mutex op_mu;

    std::mutex mu;
    std::condition_variable cv_push;
    std::condition_variable cv_pop;
    /// Pending entries. A vector double-buffer, not a deque: the consumer
    /// swaps the whole vector out in O(1) and both sides keep their
    /// capacity, so the steady state allocates no queue storage at all.
    std::vector<QueueItem> queue;
    /// Tuples currently represented in `queue` (batch entries count their
    /// size) — the unit queue_capacity backpressure is measured in.
    std::size_t queued_tuples = 0;  // guarded by mu
    /// A batch landed in an empty queue without waking the consumer yet.
    /// Batched flushes defer the cv_pop notify until queued_tuples crosses
    /// the wake threshold — on a loaded box every wake is a futex syscall
    /// plus a context-switch round trip, so waking once per several batches
    /// instead of once per batch is a large share of the batching win. The
    /// wake is guaranteed eventually: every producer re-notifies at its
    /// operator-return flush, before blocking on capacity, and for tokens.
    bool wake_pending = false;  // guarded by mu
    /// Entries drained from `queue` but not yet fully processed and flushed
    /// downstream. stop()'s topological drain must wait for this to hit
    /// zero, not just for `queue` to empty — a swap-drained worker still
    /// owes its downstream the output of the drained run.
    std::size_t inflight = 0;  // guarded by mu

    std::atomic<std::int64_t> processed{0};
    std::thread thread;
    std::unique_ptr<Rng> rng;
    std::uint64_t next_seq = 0;   // lineage stamping; guarded by op_mu
    /// Tuples handed to the source tap so far — the running boundary the
    /// snapshot captures. Guarded by op_mu, like next_seq.
    std::uint64_t tapped = 0;

    // Checkpoint alignment.
    std::vector<bool> token_seen;
    int tokens = 0;
    /// Size of the last serialized snapshot — the reserve hint for the next
    /// epoch's writer, so steady-state serialization never reallocates.
    std::size_t last_snapshot_bytes = 0;

    /// Cached metrics handle (null when metrics are off) so the hot path
    /// never does a by-name registry lookup.
    Gauge* queue_depth = nullptr;
  };

  /// Wake the consumer of `w` if a deferred batch notify is still pending.
  /// Called by producers at points where they stop pushing for a while.
  void kick(Worker& w);

  /// Batch-vector recycling. A flush moves its buffer's storage into the
  /// downstream queue entry, so without recycling every flush would malloc a
  /// fresh max_batch-capacity vector and the consumer would free it —
  /// per-flush allocator churn that erases much of the batching win at
  /// moderate batch sizes. Consumers return drained vectors here; producers
  /// draw replacements. Vectors returned with capacity intact.
  std::vector<core::Tuple> acquire_batch();
  void release_batch(std::vector<core::Tuple>&& v);

  core::QueryGraph graph_;
  RtConfig config_;
  TraceRecorder* trace_ = nullptr;
  SnapshotSink sink_;
  SourceTap source_tap_;
  ProtoProbe proto_probe_;
  // Cached metric handles; all null when config_.metrics is null.
  Counter* m_tuples_ = nullptr;
  Counter* m_sink_tuples_ = nullptr;
  HistogramMetric* m_ckpt_bytes_ = nullptr;
  /// Queued tuples at which a deferred wake fires; see Worker::wake_pending.
  std::size_t wake_threshold_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ThreadPool> helpers_;
  BufferPool snapshot_buffers_;

  /// Freelist behind acquire_batch/release_batch; bounded so a transient
  /// queue pile-up cannot pin memory forever.
  std::mutex batch_pool_mu_;
  std::vector<std::vector<core::Tuple>> batch_pool_;
  static constexpr std::size_t kMaxPooledBatches = 256;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> sink_tuples_{0};

  /// Operators of the current epoch that have not yet delivered a snapshot;
  /// begin_epoch() refuses to start a new epoch while nonzero.
  std::atomic<int> align_pending_{0};
  /// Mode of the epoch in flight. Written by begin_epoch() only while
  /// align_pending_ == 0; workers read it after receiving the epoch's token
  /// through a queue mutex, which orders the write before the read.
  SnapshotMode epoch_mode_ = SnapshotMode::kAsync;

  // Timer thread.
  struct Timer {
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::thread timer_thread_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<Timer> timers_;  // heap
  std::uint64_t timer_seq_ = 0;

  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace ms::rt
