// Small operators and cluster fixtures shared by core, ft, and integration
// tests: a deterministic counting source, a pass-through relay with
// configurable state, and a recording sink with payload capture.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/application.h"
#include "core/cluster.h"
#include "core/operator.h"
#include "core/query_graph.h"

namespace ms::testing {

/// Payload carrying one integer value.
class IntPayload final : public core::Payload {
 public:
  explicit IntPayload(std::int64_t value, Bytes declared = 128)
      : value(value), declared_(declared) {}
  std::int64_t value;
  Bytes byte_size() const override { return declared_; }
  const char* type_name() const override { return "int"; }

 private:
  Bytes declared_;
};

/// Source emitting consecutive integers 0,1,2,... at a fixed rate,
/// round-robin over its out-ports. The counter models the *external world*
/// (a sensor feed): it moves only forward, is NOT rolled back by a
/// checkpoint restore, and values produced while the source HAU is down are
/// lost (the paper's source preservation protects everything dispatched
/// downstream, not sensor data that arrives during an outage).
class CounterSource final : public core::Operator {
 public:
  CounterSource(std::string name, SimTime period, Bytes tuple_bytes = 128)
      : core::Operator(std::move(name)), period_(period), bytes_(tuple_bytes) {
    costs().base = SimTime::micros(10);
  }

  void on_open(core::OperatorContext& ctx) override { arm(ctx); }

  void process(int, const core::Tuple&, core::OperatorContext&) override {}

  Bytes state_size() const override { return 16; }
  void serialize_state(BinaryWriter& w) const override { w.write(next_); }
  void deserialize_state(BinaryReader& r) override {
    // Consume but discard: the external feed does not rewind.
    (void)r.read<std::int64_t>();
  }
  void clear_state() override {}  // the external world does not reset

  std::int64_t emitted() const { return next_; }

 private:
  void arm(core::OperatorContext& ctx) {
    ctx.schedule(period_, [this](core::OperatorContext& c) {
      core::Tuple t;
      t.wire_size = bytes_;
      t.payload = std::make_shared<IntPayload>(next_, bytes_);
      ++next_;
      c.emit(static_cast<int>(next_ % c.num_out_ports()), std::move(t));
      arm(c);
    });
  }

  SimTime period_;
  Bytes bytes_;
  std::int64_t next_ = 0;
};

/// Relay: adds `delta` to the payload value and keeps a running sum as
/// checkpointable state (`extra_state_bytes` pads the declared size).
class RelayOperator final : public core::Operator {
 public:
  RelayOperator(std::string name, std::int64_t delta = 0,
                Bytes extra_state_bytes = 0)
      : core::Operator(std::move(name)),
        delta_(delta),
        extra_(extra_state_bytes) {
    costs().base = SimTime::micros(20);
  }

  void process(int, const core::Tuple& t, core::OperatorContext& ctx) override {
    const auto* p = t.payload_as<IntPayload>();
    MS_CHECK(p != nullptr);
    sum_ += p->value;
    ++seen_;
    core::Tuple out;
    out.wire_size = t.wire_size;
    out.payload = std::make_shared<IntPayload>(p->value + delta_, out.wire_size);
    for (int port = 0; port < ctx.num_out_ports(); ++port) {
      ctx.emit(port, out);
    }
  }

  Bytes state_size() const override { return 32 + extra_; }
  void serialize_state(BinaryWriter& w) const override {
    w.write(sum_);
    w.write(seen_);
  }
  void deserialize_state(BinaryReader& r) override {
    sum_ = r.read<std::int64_t>();
    seen_ = r.read<std::int64_t>();
  }
  void clear_state() override {
    sum_ = 0;
    seen_ = 0;
  }

  std::int64_t sum() const { return sum_; }
  std::int64_t seen() const { return seen_; }
  void set_extra_state_bytes(Bytes b) { extra_ = b; }

 private:
  std::int64_t delta_;
  Bytes extra_;
  std::int64_t sum_ = 0;
  std::int64_t seen_ = 0;
};

/// Sink recording every received value (by in-port).
class RecordingSink final : public core::Operator {
 public:
  explicit RecordingSink(std::string name) : core::Operator(std::move(name)) {
    costs().base = SimTime::micros(5);
  }

  void process(int in_port, const core::Tuple& t,
               core::OperatorContext&) override {
    const auto* p = t.payload_as<IntPayload>();
    MS_CHECK(p != nullptr);
    values.push_back(p->value);
    by_port[in_port].push_back(p->value);
  }

  // The recorded values are test instrumentation, not simulated operator
  // state: declare a constant size so sinks never register as "dynamic"
  // HAUs in application-aware tests.
  Bytes state_size() const override { return 64; }
  void serialize_state(BinaryWriter& w) const override {
    w.write_vector(values);
  }
  void deserialize_state(BinaryReader& r) override {
    values = r.read_vector<std::int64_t>();
  }
  void clear_state() override {
    values.clear();
    by_port.clear();
  }

  std::vector<std::int64_t> values;
  std::map<int, std::vector<std::int64_t>> by_port;
};

/// A linear chain: source -> relay0 -> ... -> relay(n-1) -> sink.
inline core::QueryGraph chain_graph(int relays, SimTime source_period,
                                    Bytes tuple_bytes = 128) {
  core::QueryGraph g;
  const int src = g.add_source("src", [source_period, tuple_bytes] {
    return std::make_unique<CounterSource>("src", source_period, tuple_bytes);
  });
  int prev = src;
  for (int i = 0; i < relays; ++i) {
    const int r = g.add_operator("relay" + std::to_string(i), [i] {
      return std::make_unique<RelayOperator>("relay" + std::to_string(i));
    });
    g.connect(prev, r);
    prev = r;
  }
  const int sink =
      g.add_sink("sink", [] { return std::make_unique<RecordingSink>("sink"); });
  g.connect(prev, sink);
  return g;
}

/// Default small cluster: `nodes` compute nodes + 1 storage node.
inline core::ClusterParams small_cluster(int compute_nodes) {
  core::ClusterParams params;
  params.network.num_nodes = compute_nodes + 1;
  params.network.nodes_per_rack = 80;
  return params;
}

}  // namespace ms::testing
