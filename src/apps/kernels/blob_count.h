// People counting on synthetic frames — the kernel of BCP's Counter
// operators. A frame is a small occupancy grid; people are connected
// components above an intensity threshold (4-connected flood fill). BCP's
// camera generator plants a known number of blobs so tests can verify the
// detector end-to-end.
#pragma once

#include <cstdint>
#include <vector>

namespace ms::apps {

struct OccupancyGrid {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> cells;  // row-major intensities 0..255

  std::uint8_t at(int x, int y) const {
    return cells[static_cast<std::size_t>(y * width + x)];
  }
  void set(int x, int y, std::uint8_t v) {
    cells[static_cast<std::size_t>(y * width + x)] = v;
  }
  static OccupancyGrid blank(int width, int height) {
    return {width, height,
            std::vector<std::uint8_t>(static_cast<std::size_t>(width * height), 0)};
  }
};

/// Number of 4-connected components with intensity >= threshold and at
/// least `min_cells` cells (small specks are noise, not people).
int count_blobs(const OccupancyGrid& grid, std::uint8_t threshold = 128,
                int min_cells = 2);

/// Paint a roughly circular blob of the given radius at (cx, cy).
void paint_blob(OccupancyGrid& grid, int cx, int cy, int radius,
                std::uint8_t intensity = 200);

}  // namespace ms::apps
