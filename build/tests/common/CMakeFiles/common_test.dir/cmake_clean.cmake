file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/ascii_chart_test.cc.o"
  "CMakeFiles/common_test.dir/ascii_chart_test.cc.o.d"
  "CMakeFiles/common_test.dir/buffer_pool_test.cc.o"
  "CMakeFiles/common_test.dir/buffer_pool_test.cc.o.d"
  "CMakeFiles/common_test.dir/metrics_test.cc.o"
  "CMakeFiles/common_test.dir/metrics_test.cc.o.d"
  "CMakeFiles/common_test.dir/rng_test.cc.o"
  "CMakeFiles/common_test.dir/rng_test.cc.o.d"
  "CMakeFiles/common_test.dir/serialize_test.cc.o"
  "CMakeFiles/common_test.dir/serialize_test.cc.o.d"
  "CMakeFiles/common_test.dir/status_test.cc.o"
  "CMakeFiles/common_test.dir/status_test.cc.o.d"
  "CMakeFiles/common_test.dir/thread_pool_test.cc.o"
  "CMakeFiles/common_test.dir/thread_pool_test.cc.o.d"
  "CMakeFiles/common_test.dir/units_test.cc.o"
  "CMakeFiles/common_test.dir/units_test.cc.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
