#include "common/metrics_registry.h"

#include <sstream>

namespace ms {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, LatencyHistogram>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, LatencyHistogram>> out;
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->snapshot());
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {
void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}
}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    const LatencyHistogram snap = h->snapshot();
    write_json_string(out, name);
    out << ":{\"count\":" << snap.count() << ",\"mean_ns\":" << snap.mean().ns()
        << ",\"p50_ns\":" << snap.percentile(50).ns()
        << ",\"p99_ns\":" << snap.percentile(99).ns()
        << ",\"min_ns\":" << snap.min().ns() << ",\"max_ns\":" << snap.max().ns()
        << "}";
  }
  out << "}}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace ms
