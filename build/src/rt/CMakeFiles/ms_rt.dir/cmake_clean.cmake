file(REMOVE_RECURSE
  "CMakeFiles/ms_rt.dir/engine.cc.o"
  "CMakeFiles/ms_rt.dir/engine.cc.o.d"
  "libms_rt.a"
  "libms_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
