#include "ft/verify.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <system_error>

#include "ft/durable_layout.h"
#include "storage/durable_file.h"

namespace ms::ft {

namespace fs = std::filesystem;

namespace {

/// Frame-verify one artifact file; returns true when the payload came back.
bool check_artifact(const std::string& path, storage::ArtifactKind kind,
                    std::vector<std::uint8_t>* payload, bool* legacy,
                    ScrubReport* report) {
  const storage::DurableOptions opts{storage::SyncMode::kNone, nullptr};
  const Status st = storage::read_artifact(path, kind, opts, payload, legacy);
  if (!st.is_ok()) {
    report->issues.push_back({path, st.message()});
    return false;
  }
  ++report->artifacts;
  if (*legacy) ++report->legacy;
  report->verified_bytes += payload->size();
  return true;
}

void scrub_epoch(const std::string& dir, std::uint64_t epoch,
                 const std::map<std::uint64_t, bool>& epoch_dirs,
                 ScrubReport* report) {
  const std::string edir = dir + "/epoch_" + std::to_string(epoch);
  const std::string mpath = edir + "/MANIFEST";
  std::error_code ec;
  if (!fs::exists(mpath, ec)) {
    ++report->incomplete;  // crash mid-checkpoint: the epoch never existed
    return;
  }
  ++report->epochs;
  std::vector<std::uint8_t> payload;
  bool legacy = false;
  if (!check_artifact(mpath, storage::ArtifactKind::kManifest, &payload,
                      &legacy, report)) {
    return;  // everything below needs the manifest's sizes
  }
  auto decoded = decode_manifest(payload, mpath);
  if (!decoded.is_ok()) {
    report->issues.push_back({mpath, decoded.status().message()});
    return;
  }
  const EpochManifest& m = decoded.value();
  if (m.epoch != epoch) {
    report->issues.push_back(
        {mpath, "manifest epoch " + std::to_string(m.epoch) +
                    " does not match directory epoch " +
                    std::to_string(epoch)});
  }
  if (m.prev_epoch != 0 && epoch_dirs.find(m.prev_epoch) == epoch_dirs.end()) {
    report->issues.push_back(
        {mpath, "chain predecessor epoch_" + std::to_string(m.prev_epoch) +
                    " is missing"});
  }
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const EpochManifest::Op& op = m.ops[i];
    const std::string bpath = edir + "/op_" + std::to_string(i) +
                              (op.delta ? ".delta" : ".ckpt");
    std::error_code b_ec;
    if (!fs::exists(bpath, b_ec)) {
      if (op.size == 0) continue;  // an op that never reported writes nothing
      report->issues.push_back(
          {bpath, "blob missing (manifest records " +
                      std::to_string(op.size) + " bytes)"});
      continue;
    }
    std::vector<std::uint8_t> blob;
    bool blob_legacy = false;
    if (!check_artifact(bpath,
                        op.delta ? storage::ArtifactKind::kDelta
                                 : storage::ArtifactKind::kCheckpoint,
                        &blob, &blob_legacy, report)) {
      continue;
    }
    if (blob.size() != op.size) {
      report->issues.push_back(
          {bpath, "size mismatch: manifest records " +
                      std::to_string(op.size) + " bytes, blob carries " +
                      std::to_string(blob.size())});
    }
  }
}

void scrub_source_log(const std::string& path, ScrubReport* report) {
  const storage::DurableOptions opts{storage::SyncMode::kNone, nullptr};
  std::vector<std::uint8_t> bytes;
  const Status st =
      storage::read_raw(path, storage::ArtifactKind::kSourceLog, opts, &bytes);
  if (!st.is_ok()) {
    report->issues.push_back({path, st.message()});
    return;
  }
  const LogScan scan = scan_log_bytes(bytes.data(), bytes.size());
  ++report->artifacts;
  if (!scan.new_format && !bytes.empty()) ++report->legacy;
  report->verified_bytes += scan.valid_bytes;
  if (scan.torn) {
    report->issues.push_back(
        {path, "torn tail: " + std::to_string(bytes.size() - scan.valid_bytes) +
                   " unverifiable bytes past offset " +
                   std::to_string(scan.valid_bytes) + " (" +
                   std::to_string(scan.frames.size()) + " whole frames)"});
  }
}

void scrub_baseline(const std::string& path, ScrubReport* report) {
  std::vector<std::uint8_t> payload;
  bool legacy = false;
  if (!check_artifact(path, storage::ArtifactKind::kBaseline, &payload,
                      &legacy, report)) {
    return;
  }
  constexpr std::size_t kHeader = 8 + 1 + 8 + 8 + 8;
  if (payload.size() < kHeader) {
    report->issues.push_back({path, "baseline header truncated"});
    return;
  }
  std::uint64_t size = 0;
  for (int b = 0; b < 8; ++b) {
    size |= static_cast<std::uint64_t>(payload[kHeader - 8 + b]) << (8 * b);
  }
  if (size != payload.size() - kHeader) {
    report->issues.push_back(
        {path, "baseline size mismatch: header records " +
                   std::to_string(size) + " bytes, file carries " +
                   std::to_string(payload.size() - kHeader)});
  }
}

}  // namespace

ScrubReport scrub_checkpoint_dir(const std::string& dir) {
  ScrubReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return report;
  std::map<std::uint64_t, bool> epoch_dirs;  // epoch -> (unused)
  std::vector<std::string> logs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("epoch_", 0) == 0) {
      try {
        epoch_dirs[std::stoull(name.substr(6))] = true;
      } catch (...) {
        report.issues.push_back(
            {entry.path().string(), "unparseable epoch directory name"});
      }
    } else if (name.rfind("source_", 0) == 0 &&
               name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0) {
      logs.push_back(entry.path().string());
    }
  }
  for (const auto& [epoch, unused] : epoch_dirs) {
    (void)unused;
    scrub_epoch(dir, epoch, epoch_dirs, &report);
  }
  std::sort(logs.begin(), logs.end());
  for (const std::string& path : logs) scrub_source_log(path, &report);
  const std::string bdir = dir + "/baseline";
  if (fs::is_directory(bdir, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(bdir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("op_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".ckpt") == 0) {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& path : files) scrub_baseline(path, &report);
  }
  return report;
}

}  // namespace ms::ft
