// Deterministic chaos fault-injection harness.
//
// Scripts faults against precise protocol states instead of wall-clock
// offsets: the harness subscribes to MsScheme's FtPoint probes (ft/probe.h)
// and fires its triggers when the protocol actually reaches the scripted
// point — "kill relay1's node when it starts serializing", "take shared
// storage down when recovery enters phase 2", "inject a second burst before
// the phase-4 handshake". Actions are deferred by one zero-delay simulation
// event so the protocol step that emitted the probe completes before the
// fault lands. Everything runs inside the deterministic simulation, so a
// (seed, script) pair reproduces the same fault timeline bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/application.h"
#include "failure/burst.h"
#include "ft/meteor_shower.h"
#include "ft/probe.h"
#include "net/network.h"

namespace ms::failure {

class ChaosHarness {
 public:
  ChaosHarness(core::Application* app, ft::MsScheme* scheme);

  // --- scripting; call before arm() ---
  /// Kill the node hosting `hau_id` the `occurrence`-th time `point` fires
  /// for that HAU (application-wide points, which carry hau = -1, match any
  /// filter).
  void kill_on(ft::FtPoint point, int hau_id, int occurrence = 1);
  /// Kill the node hosting `hau_id` at an absolute simulation time.
  void kill_at(SimTime at, int hau_id);
  /// Take shared storage down for `duration` when `point` fires.
  void storage_outage_on(ft::FtPoint point, SimTime duration,
                         int occurrence = 1);
  /// Take shared storage down for `duration` at an absolute time.
  void storage_outage_at(SimTime at, SimTime duration);
  /// Kill every node hosting an HAU (a second correlated burst) when
  /// `point` fires.
  void burst_on(ft::FtPoint point, int occurrence = 1);
  /// Apply a seeded FaultPlan (per-category drop/delay/duplicate/reorder)
  /// to the cluster network for `duration` when `point` fires; the plan is
  /// cleared afterwards. Replaces any plan already active.
  void net_faults_on(ft::FtPoint point, net::FaultPlan plan, SimTime duration,
                     int occurrence = 1);
  /// Apply a FaultPlan for `duration` at an absolute time.
  void net_faults_at(SimTime at, net::FaultPlan plan, SimTime duration);
  /// Sever all traffic between two racks for `duration` when `point` fires.
  void partition_on(ft::FtPoint point, int rack_a, int rack_b,
                    SimTime duration, int occurrence = 1);
  /// Sever two racks for `duration` at an absolute time.
  void partition_at(SimTime at, int rack_a, int rack_b, SimTime duration);
  /// Delay the liveness pongs of the node hosting `hau_id` by `delay` for
  /// `duration` when `point` fires: the node stays alive but answers late,
  /// exercising the detector's suspicion/exoneration path.
  void heartbeat_delay_on(ft::FtPoint point, int hau_id, SimTime delay,
                          SimTime duration, int occurrence = 1);

  /// Install the probe subscription on the scheme. Call once, after the
  /// script is set up and before the simulation runs. Other subscribers
  /// (e.g. a ProbeTracer) coexist on the same probe spine.
  void arm();

  /// Record every injected fault as an instant on the controller track, so
  /// a captured trace shows what the chaos script did and when.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Nodes killed by fired triggers so far.
  int kills() const { return kills_; }
  /// Triggers that have fired (any action).
  int fired() const { return fired_; }
  /// Human-readable timeline of everything the harness did.
  const std::vector<std::string>& log() const { return log_; }

 private:
  struct Trigger {
    ft::FtPoint point = ft::FtPoint::kTokenAlignStart;
    int hau_filter = -1;  // -1 = any HAU / application-wide
    int occurrence = 1;   // fire on the n-th matching probe
    int seen = 0;
    bool fired = false;
    enum class Action { kKill, kOutage, kBurst, kNetFaults, kPartition,
                        kHbDelay };
    Action action = Action::kKill;
    int kill_hau = -1;
    SimTime duration = SimTime::zero();  // outage / faults / partition / delay
    net::FaultPlan plan;
    int rack_a = 0;
    int rack_b = 0;
    SimTime hb_delay = SimTime::zero();
  };

  void on_probe(ft::FtPoint point, int hau, std::uint64_t id);
  void fire(Trigger& trigger, std::uint64_t id);
  void kill_hau_node(int hau_id);
  void start_outage(SimTime duration);
  void start_net_faults(const net::FaultPlan& plan, SimTime duration);
  void start_partition(int rack_a, int rack_b, SimTime duration);
  void start_hb_delay(int hau_id, SimTime delay, SimTime duration);
  void note(std::string line);
  void trace_instant(const std::string& name);

  core::Application* app_;
  ft::MsScheme* scheme_;
  FailureInjector injector_;
  TraceRecorder* trace_ = nullptr;
  std::vector<Trigger> triggers_;
  bool armed_ = false;
  int kills_ = 0;
  int fired_ = 0;
  std::vector<std::string> log_;
};

}  // namespace ms::failure
