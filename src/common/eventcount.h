// Eventcount: futex-style parking for lock-free producers and consumers.
//
// A waiter that finds nothing to do announces itself (prepare_wait), then
// re-checks its predicate against the lock-free state, and only then sleeps
// (wait) — or backs out (cancel_wait). A notifier first makes the predicate
// true (e.g. a ring push), then calls notify(), which is nearly free when
// nobody is parked: a fence plus one load.
//
// Lost-wakeup freedom is the Dekker/store-buffering argument: the waiter
// does a seq_cst RMW on waiters_ followed by a seq_cst fence before its
// predicate re-check; the notifier does a seq_cst fence between its
// predicate mutation and its waiters_ load. Whatever order the two sides
// interleave, either the notifier observes waiters_ > 0 (and bumps the
// epoch under the mutex, which the cv wait predicate re-reads under the
// same mutex), or the waiter's re-check observes the mutated predicate and
// never sleeps.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace ms {

class EventCount {
 public:
  using Key = std::uint32_t;

  /// Announce intent to sleep; returns the epoch to pass to wait(). Must be
  /// followed by exactly one wait(key) or cancel_wait(). Re-check your
  /// predicate between prepare_wait() and wait().
  Key prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Sleep until an epoch bump after `key`. May return spuriously early
  /// relative to the caller's predicate — callers always re-check in a loop.
  void wait(Key key) {
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] {
        return epoch_.load(std::memory_order_seq_cst) != key;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wake every parked waiter. Callers mutate the waiters' predicate
  /// *before* calling this.
  void notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      std::scoped_lock lk(mu_);
      epoch_.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_all();
  }

 private:
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<std::uint32_t> epoch_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace ms
