// Behavioural tests: run each application briefly on the simulated cluster
// and check the paper's §II-B2 state-size dynamics (sawtooth for TMI,
// arrival-purged fluctuation for BCP/SignalGuru) and end-to-end dataflow.
#include <gtest/gtest.h>

#include <memory>

#include "apps/bcp.h"
#include "apps/signalguru.h"
#include "apps/tmi.h"
#include "common/metrics.h"
#include "core/application.h"

namespace ms::apps {
namespace {

core::ClusterParams cluster_params() {
  core::ClusterParams p;
  p.network.num_nodes = 56;
  return p;
}

Bytes sum_state(core::Application& app, const std::vector<int>& haus) {
  Bytes b = 0;
  for (const int h : haus) b += app.hau(h).state_size();
  return b;
}

TEST(TmiRunTest, TuplesReachSinkAndPoolGrows) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, cluster_params());
  TmiConfig cfg;
  cfg.window = SimTime::seconds(60);
  cfg.records_per_second = 20;
  core::Application app(&cluster, build_tmi(cfg));
  app.deploy();
  app.start();
  sim.run_until(SimTime::seconds(30));
  const auto layout = tmi_layout(cfg);
  // Mid-window: pools have content.
  EXPECT_GT(sum_state(app, layout.kmeans), 0);
  // Window flush emits inferences to the sink.
  sim.run_until(SimTime::seconds(90));
  EXPECT_GT(app.sink_tuple_count(), 0);
}

TEST(TmiRunTest, StateSawtoothDropsAtWindowBoundary) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, cluster_params());
  TmiConfig cfg;
  cfg.window = SimTime::seconds(60);
  cfg.records_per_second = 20;
  core::Application app(&cluster, build_tmi(cfg));
  app.deploy();
  app.start();
  const auto layout = tmi_layout(cfg);
  sim.run_until(SimTime::seconds(58));
  const Bytes before_flush = sum_state(app, layout.kmeans);
  sim.run_until(SimTime::seconds(70));
  const Bytes after_flush = sum_state(app, layout.kmeans);
  EXPECT_GT(before_flush, 1_MB);
  // After the flush the pools restarted from ~zero.
  EXPECT_LT(after_flush, before_flush / 2);
}

TEST(TmiRunTest, WindowLengthScalesPeakState) {
  // Fig. 5a: larger N → larger peaks.
  auto peak_for = [](SimTime window) {
    sim::Simulation sim;
    core::Cluster cluster(&sim, cluster_params());
    TmiConfig cfg;
    cfg.window = window;
    cfg.records_per_second = 20;
    core::Application app(&cluster, build_tmi(cfg));
    app.deploy();
    app.start();
    const auto layout = tmi_layout(cfg);
    Bytes peak = 0;
    for (int s = 5; s <= 120; s += 5) {
      sim.run_until(SimTime::seconds(s));
      peak = std::max(peak, sum_state(app, layout.kmeans));
    }
    return peak;
  };
  EXPECT_LT(peak_for(SimTime::seconds(30)), peak_for(SimTime::seconds(120)));
}

TEST(BcpRunTest, HistoricalStateFluctuatesWithBusArrivals) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, cluster_params());
  BcpConfig cfg;
  cfg.bus_interarrival_mean = SimTime::seconds(40);
  cfg.bus_interarrival_min = SimTime::seconds(15);
  core::Application app(&cluster, build_bcp(cfg));
  app.deploy();
  app.start();
  const auto layout = bcp_layout(cfg);
  TimeSeries series;
  for (int s = 2; s <= 240; s += 2) {
    sim.run_until(SimTime::seconds(s));
    series.add(SimTime::seconds(s),
               static_cast<double>(sum_state(app, layout.historical)));
  }
  // Fluctuating, not monotone: max well above min, multiple local minima.
  EXPECT_GT(series.max_value(), 4 * std::max(series.min_value(), 1.0));
  EXPECT_GE(series.local_minima(3).size(), 2u);
  EXPECT_GT(app.sink_tuple_count(), 0);
}

TEST(SgRunTest, MotionFilterStatePurgesPerApproach) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, cluster_params());
  SgConfig cfg;
  core::Application app(&cluster, build_signalguru(cfg));
  app.deploy();
  app.start();
  const auto layout = signalguru_layout(cfg);
  Bytes peak = 0;
  Bytes trough = 1_GB * 100;
  for (int s = 2; s <= 180; s += 2) {
    sim.run_until(SimTime::seconds(s));
    const Bytes state = sum_state(app, layout.motion_filters);
    peak = std::max(peak, state);
    if (s > 60) trough = std::min(trough, state);
  }
  EXPECT_GT(peak, 100_MB);  // heavy state (paper: 200 MB - 2 GB)
  EXPECT_LT(trough, peak);  // purges happen
  sim.run_until(SimTime::seconds(240));
  EXPECT_GT(app.sink_tuple_count(), 0);
}

TEST(SgRunTest, PredictionsFlowEndToEnd) {
  sim::Simulation sim;
  core::Cluster cluster(&sim, cluster_params());
  SgConfig cfg;
  cfg.approach_min = SimTime::seconds(5);
  cfg.approach_max = SimTime::seconds(10);
  core::Application app(&cluster, build_signalguru(cfg));
  app.deploy();
  app.start();
  sim.run_until(SimTime::seconds(120));
  // Approaches complete → detections → votes → SVM predictions → sink.
  EXPECT_GT(app.sink_tuple_count(), 5);
  EXPECT_GT(app.latency().count(), 0);
}

TEST(AppStateSizeTest, RelativeWorkloadOrdering) {
  // Paper: TMI / BCP / SignalGuru are low / medium / high workloads.
  auto average_state = [](auto build_fn, auto layout_haus) {
    sim::Simulation sim;
    core::Cluster cluster(&sim, cluster_params());
    core::Application app(&cluster, build_fn());
    app.deploy();
    app.start();
    double sum = 0.0;
    int n = 0;
    for (int s = 10; s <= 240; s += 10) {
      sim.run_until(SimTime::seconds(s));
      Bytes b = 0;
      for (const int h : layout_haus) b += app.hau(h).state_size();
      sum += static_cast<double>(b);
      ++n;
    }
    return sum / n;
  };
  TmiConfig tmi_cfg;
  tmi_cfg.window = SimTime::minutes(2);
  const double tmi = average_state([&] { return build_tmi(tmi_cfg); },
                                   tmi_layout(tmi_cfg).kmeans);
  const double bcp =
      average_state([] { return build_bcp(); }, bcp_layout().historical);
  const double sg = average_state([] { return build_signalguru(); },
                                  signalguru_layout().motion_filters);
  EXPECT_LT(tmi, bcp);
  EXPECT_LT(bcp, sg);
}

}  // namespace
}  // namespace ms::apps
