# Empty dependencies file for fig14_checkpoint_time.
# This may be replaced when dependencies are built.
