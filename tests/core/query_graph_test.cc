#include "core/query_graph.h"

#include <gtest/gtest.h>

#include "../testing/test_ops.h"

namespace ms::core {
namespace {

using ms::testing::RecordingSink;
using ms::testing::RelayOperator;

OperatorFactory relay() {
  return [] { return std::make_unique<RelayOperator>("op"); };
}

TEST(QueryGraphTest, ConnectAllocatesPorts) {
  QueryGraph g;
  const int a = g.add_source("a", relay());
  const int b = g.add_operator("b", relay());
  const int c = g.add_sink("c", relay());
  g.connect(a, b);
  g.connect(a, c);
  g.connect(b, c);
  EXPECT_EQ(g.out_degree(a), 2);
  EXPECT_EQ(g.in_degree(c), 2);
  EXPECT_EQ(g.edge(0).out_port, 0);
  EXPECT_EQ(g.edge(1).out_port, 1);
  EXPECT_EQ(g.edge(1).in_port, 0);
  EXPECT_EQ(g.edge(2).in_port, 1);
}

TEST(QueryGraphTest, ValidAcyclicGraphPasses) {
  const QueryGraph g = ms::testing::chain_graph(3, SimTime::millis(10));
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.num_operators(), 5);
}

TEST(QueryGraphTest, SourceWithInputsRejected) {
  QueryGraph g;
  const int a = g.add_source("a", relay());
  const int b = g.add_source("b", relay());
  const int c = g.add_sink("c", relay());
  g.connect(a, b);  // source b must not have inputs
  g.connect(b, c);
  const Status st = g.validate();
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("has inputs"), std::string::npos);
}

TEST(QueryGraphTest, OrphanOperatorRejected) {
  QueryGraph g;
  const int a = g.add_source("a", relay());
  const int b = g.add_operator("orphan", relay());
  const int c = g.add_sink("c", relay());
  g.connect(a, c);
  (void)b;
  EXPECT_FALSE(g.validate().is_ok());
}

TEST(QueryGraphTest, DeadEndOperatorRejected) {
  QueryGraph g;
  const int a = g.add_source("a", relay());
  const int b = g.add_operator("deadend", relay());
  g.connect(a, b);  // b has no outputs and is not a sink
  EXPECT_FALSE(g.validate().is_ok());
}

TEST(QueryGraphTest, SourcesAndSinksEnumerated) {
  QueryGraph g;
  const int s1 = g.add_source("s1", relay());
  const int s2 = g.add_source("s2", relay());
  const int k = g.add_sink("k", relay());
  g.connect(s1, k);
  g.connect(s2, k);
  EXPECT_EQ(g.sources(), (std::vector<int>{s1, s2}));
  EXPECT_EQ(g.sinks(), (std::vector<int>{k}));
}

TEST(QueryGraphTest, TopologicalOrderRespectsEdges) {
  QueryGraph g;
  const int a = g.add_source("a", relay());
  const int b = g.add_operator("b", relay());
  const int c = g.add_operator("c", relay());
  const int d = g.add_sink("d", relay());
  g.connect(a, c);
  g.connect(a, b);
  g.connect(b, d);
  g.connect(c, d);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(d));
  EXPECT_LT(pos(c), pos(d));
}

TEST(QueryGraphDeathTest, SelfLoopRejected) {
  QueryGraph g;
  const int a = g.add_operator("a", relay());
  EXPECT_DEATH(g.connect(a, a), "self-loop");
}

}  // namespace
}  // namespace ms::core
