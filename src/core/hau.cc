#include "core/hau.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "core/application.h"

namespace ms::core {

void HauFt::on_token_at_head(Hau& hau, int in_port, const Token& token) {
  (void)token;
  // No fault tolerance: drop stray tokens.
  hau.pop_token(in_port);
}

void HauFt::emit(Hau& hau, int out_port, Tuple tuple) {
  hau.send_downstream(out_port, std::move(tuple));
}

Bytes CheckpointImage::total_declared() const {
  Bytes b = declared_state_size + kFixedOverhead;
  for (const auto& [port, t] : inflight) {
    (void)port;
    b += t.wire_size;
  }
  return b;
}

/// OperatorContext implementation bound to one process()/timer invocation.
class HauOperatorContext final : public OperatorContext {
 public:
  HauOperatorContext(Hau* hau, const Tuple* current_input)
      : hau_(hau), current_input_(current_input) {}

  SimTime now() const override { return hau_->app().simulation().now(); }
  Rng& rng() override { return hau_->rng_; }

  void emit(int out_port, Tuple&& tuple) override {
    hau_->emit_from_context(out_port, std::move(tuple), current_input_);
  }
  using OperatorContext::emit;

  int num_out_ports() const override { return hau_->num_out_ports(); }
  int num_in_ports() const override { return hau_->num_in_ports(); }

  void schedule(SimTime delay,
                std::function<void(OperatorContext&)> fn) override {
    Hau* hau = hau_;
    hau->schedule(delay, [hau, fn = std::move(fn)] {
      HauOperatorContext ctx(hau, /*current_input=*/nullptr);
      fn(ctx);
    });
  }

  void charge(SimTime cost) override {
    if (current_input_ != nullptr) {
      hau_->add_pending_cost(cost);
    } else {
      hau_->busy_for(cost);
    }
  }

  int hau_id() const override { return hau_->id(); }

 private:
  Hau* hau_;
  const Tuple* current_input_;
};

Hau::Hau(Application* app, int id, std::unique_ptr<Operator> op, bool is_source,
         bool is_sink)
    : app_(app),
      id_(id),
      op_(std::move(op)),
      is_source_(is_source),
      is_sink_(is_sink),
      ft_(std::make_unique<HauFt>()),
      rng_(app->seed() ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(id + 1))) {
  MS_CHECK(app != nullptr);
  MS_CHECK(op_ != nullptr);
}

Hau::~Hau() = default;

void Hau::add_in_edge(Hau* from, int their_out_port) {
  MS_CHECK(from != nullptr);
  InEdge edge;
  edge.from = from;
  edge.their_out_port = their_out_port;
  in_.push_back(std::move(edge));
}

void Hau::add_out_edge(Hau* to, int their_in_port) {
  MS_CHECK(to != nullptr);
  OutEdge edge;
  edge.to = to;
  edge.their_in_port = their_in_port;
  out_.push_back(std::move(edge));
}

int Hau::find_out_port(const Hau& downstream_hau, int their_in_port) const {
  for (int p = 0; p < num_out_ports(); ++p) {
    const auto& e = out_[static_cast<std::size_t>(p)];
    if (e.to == &downstream_hau && e.their_in_port == their_in_port) return p;
  }
  MS_CHECK_MSG(false, "no edge to requested downstream port");
  return -1;
}

void Hau::attach_ft(std::unique_ptr<HauFt> ft) {
  MS_CHECK(ft != nullptr);
  MS_CHECK_MSG(!started_, "attach_ft after start");
  ft_ = std::move(ft);
}

void Hau::start() {
  MS_CHECK(node_ != net::kInvalidNode);
  MS_CHECK(!started_);
  started_ = true;
  for (auto& e : out_) e.credits = app_->cluster().params().flow_window;
  ft_->on_start(*this);
  HauOperatorContext ctx(this, /*current_input=*/nullptr);
  op_->on_open(ctx);
  maybe_schedule_processing();
}

void Hau::on_node_failed() {
  if (failed_) return;
  failed_ = true;
  ++incarnation_;  // orphans in-flight CPU jobs, timers, and control messages
  processing_ = false;
  pause_depth_ = 0;
  pending_post_cost_ = SimTime::zero();
  pending_emissions_.clear();
  for (auto& e : in_) {
    e.buffer.clear();
    e.blocked = false;
  }
  for (auto& e : out_) e.pending.clear();
}

void Hau::restart_on(net::NodeId n) {
  MS_CHECK_MSG(failed_, "restart of a live HAU");
  MS_CHECK(app_->cluster().node_alive(n));
  node_ = n;
  failed_ = false;
  ++incarnation_;
  processing_ = false;
  pause_depth_ = 0;
  rr_next_port_ = 0;
  cost_multiplier_ = 1.0;
  pending_post_cost_ = SimTime::zero();
  pending_emissions_.clear();
  for (auto& e : in_) {
    e.buffer.clear();
    e.blocked = false;
    e.last_processed_edge_seq = 0;
    e.last_received_edge_seq = 0;
  }
  for (auto& e : out_) {
    e.next_edge_seq = 1;
    e.credits = app_->cluster().params().flow_window;
    e.pending.clear();
  }
  op_->clear_state();
}

void Hau::reopen() {
  MS_CHECK_MSG(started_ && !failed_, "reopen of an unstarted or failed HAU");
  ft_->on_restart(*this);
  HauOperatorContext ctx(this, /*current_input=*/nullptr);
  op_->on_open(ctx);
  maybe_schedule_processing();
}

void Hau::receive(int in_port, StreamItem item) {
  if (failed_) return;
  MS_CHECK(in_port >= 0 && in_port < num_in_ports());
  auto& edge = in_[static_cast<std::size_t>(in_port)];
  if (const auto* t = std::get_if<Tuple>(&item)) {
    if (t->edge_seq <= edge.last_received_edge_seq) {
      return_credit(in_port);  // recovery duplicate: dropped but consumed
      return;
    }
    edge.last_received_edge_seq = t->edge_seq;
  }
  edge.buffer.push_back(std::move(item));
  maybe_schedule_processing();
}

std::uint64_t Hau::send_downstream(int out_port, Tuple tuple) {
  if (failed_) return 0;
  MS_CHECK(out_port >= 0 && out_port < num_out_ports());
  auto& edge = out_[static_cast<std::size_t>(out_port)];
  tuple.edge_seq = edge.next_edge_seq++;
  const std::uint64_t seq = tuple.edge_seq;
  enqueue_out(edge, StreamItem(std::move(tuple)));
  return seq;
}

void Hau::resend_downstream(int out_port, Tuple tuple) {
  if (failed_) return;
  MS_CHECK(out_port >= 0 && out_port < num_out_ports());
  MS_CHECK_MSG(tuple.edge_seq != 0, "resend of a tuple that was never sent");
  auto& edge = out_[static_cast<std::size_t>(out_port)];
  edge.next_edge_seq = std::max(edge.next_edge_seq, tuple.edge_seq + 1);
  enqueue_out(edge, StreamItem(std::move(tuple)));
}

void Hau::send_token(int out_port, const Token& token, bool jump_queue) {
  if (failed_) return;
  MS_CHECK(out_port >= 0 && out_port < num_out_ports());
  enqueue_out(out_[static_cast<std::size_t>(out_port)], StreamItem(token),
              jump_queue);
}

void Hau::enqueue_out(OutEdge& edge, StreamItem item, bool jump_queue) {
  if (!is_token(item)) ++tuples_emitted_;
  if (jump_queue) {
    edge.pending.push_front(std::move(item));
  } else {
    edge.pending.push_back(std::move(item));
  }
  pump_edge(edge);
}

void Hau::pump_edge(OutEdge& edge) {
  while (edge.credits > 0 && !edge.pending.empty()) {
    --edge.credits;
    StreamItem item = std::move(edge.pending.front());
    edge.pending.pop_front();
    dispatch(edge, std::move(item));
  }
}

void Hau::dispatch(OutEdge& edge, StreamItem item) {
  // Source-lineage tuples are timestamped when they actually enter the
  // stream (ingest backlog behind the flow window is not "latency").
  if (is_source_) {
    if (auto* t = std::get_if<Tuple>(&item)) {
      t->event_time = app_->simulation().now();
    }
  }
  Hau* to = edge.to;
  const int their_port = edge.their_in_port;
  const std::uint64_t target_inc = to->incarnation();
  const bool token = is_token(item);
  // A dropped message never reaches the receiver, so its kAck credit return
  // never comes back; restore the credit here or loss slowly strangles the
  // edge's flow window.
  const int out_port = static_cast<int>(&edge - out_.data());
  const std::uint64_t my_inc = incarnation_;
  app_->cluster().network().send(
      node_, to->node(), item_wire_size(item),
      token ? net::MsgCategory::kToken : net::MsgCategory::kData,
      [to, their_port, target_inc, item = std::move(item)]() mutable {
        if (to->incarnation() != target_inc) return;  // connection broke
        to->receive(their_port, std::move(item));
      },
      [this, out_port, my_inc] {
        if (failed_ || incarnation_ != my_inc) return;
        on_credit(out_port);
      });
}

void Hau::return_credit(int in_port) {
  auto& edge = in_[static_cast<std::size_t>(in_port)];
  Hau* up = edge.from;
  if (up->failed()) return;
  const int up_out = edge.their_out_port;
  const std::uint64_t up_inc = up->incarnation();
  app_->cluster().network().send(node_, up->node(), 64,
                                 net::MsgCategory::kAck,
                                 [up, up_inc, up_out] {
                                   if (up->incarnation() != up_inc ||
                                       up->failed()) {
                                     return;
                                   }
                                   up->on_credit(up_out);
                                 });
}

void Hau::on_credit(int out_port) {
  auto& edge = out_.at(static_cast<std::size_t>(out_port));
  edge.credits = std::min(edge.credits + 1,
                          app_->cluster().params().flow_window);
  pump_edge(edge);
  // An emit-blocked HAU may be able to process again.
  maybe_schedule_processing();
}

bool Hau::blocked_on_send() const {
  for (const auto& e : out_) {
    if (!e.pending.empty()) return true;
  }
  return false;
}

std::vector<std::pair<int, Tuple>> Hau::pending_behind_tokens() const {
  std::vector<std::pair<int, Tuple>> out;
  for (int p = 0; p < num_out_ports(); ++p) {
    const auto& edge = out_[static_cast<std::size_t>(p)];
    for (const auto& item : edge.pending) {
      if (const auto* t = std::get_if<Tuple>(&item)) out.emplace_back(p, *t);
    }
  }
  return out;
}

void Hau::reset_edge_flow(int out_port) {
  auto& edge = out_.at(static_cast<std::size_t>(out_port));
  edge.credits = app_->cluster().params().flow_window;
  // The connection is re-established from scratch: undispatched output is
  // dropped here and re-delivered by the recovery protocol's resend (it is
  // all in the preservation buffer / checkpoint in-flight set).
  edge.pending.clear();
  maybe_schedule_processing();
}

Bytes Hau::pending_out_bytes() const {
  Bytes b = 0;
  for (const auto& e : out_) {
    for (const auto& item : e.pending) b += item_wire_size(item);
  }
  return b;
}

std::size_t Hau::pending_out_tuples() const {
  std::size_t n = 0;
  for (const auto& e : out_) {
    for (const auto& item : e.pending) {
      if (!is_token(item)) ++n;
    }
  }
  return n;
}

void Hau::pause() { ++pause_depth_; }

void Hau::resume() {
  if (pause_depth_ == 0) return;
  if (--pause_depth_ > 0) return;
  while (!pending_emissions_.empty() && pause_depth_ == 0 && !failed_) {
    auto [port, tuple] = std::move(pending_emissions_.front());
    pending_emissions_.pop_front();
    emit_from_context(port, std::move(tuple), /*current_input=*/nullptr);
  }
  maybe_schedule_processing();
}

void Hau::busy_for(SimTime cost) {
  if (failed_ || cost <= SimTime::zero()) return;
  pause();
  run_on_cpu(cost, [this] { resume(); });
}

void Hau::block_port(int in_port) {
  in_.at(static_cast<std::size_t>(in_port)).blocked = true;
}

void Hau::unblock_port(int in_port) {
  in_.at(static_cast<std::size_t>(in_port)).blocked = false;
  maybe_schedule_processing();
}

bool Hau::port_blocked(int in_port) const {
  return in_.at(static_cast<std::size_t>(in_port)).blocked;
}

bool Hau::head_is_token(int in_port) const {
  const auto& buf = in_.at(static_cast<std::size_t>(in_port)).buffer;
  return !buf.empty() && is_token(buf.front());
}

Token Hau::pop_token(int in_port) {
  auto& edge = in_.at(static_cast<std::size_t>(in_port));
  MS_CHECK_MSG(!edge.buffer.empty() && is_token(edge.buffer.front()),
               "pop_token: head is not a token");
  const Token token = std::get<Token>(edge.buffer.front());
  edge.buffer.pop_front();
  return_credit(in_port);  // the token occupied a flow-window slot
  return token;
}

Bytes Hau::state_size() const { return op_->state_size(); }

CheckpointImage Hau::capture_state(std::vector<std::pair<int, Tuple>> inflight,
                                   std::uint64_t checkpoint_id) const {
  CheckpointImage image;
  image.checkpoint_id = checkpoint_id;
  BinaryWriter w;
  op_->serialize_state(w);
  image.operator_state = w.take();
  image.declared_state_size = op_->state_size();
  image.source_next_seq = source_next_seq_;
  image.in_port_progress.reserve(in_.size());
  for (const auto& e : in_) image.in_port_progress.push_back(e.last_processed_edge_seq);
  image.out_port_next_seq.reserve(out_.size());
  for (const auto& e : out_) image.out_port_next_seq.push_back(e.next_edge_seq);
  image.inflight = std::move(inflight);
  return image;
}

std::vector<std::pair<int, Tuple>> Hau::restore_state(
    const CheckpointImage& image) {
  op_->clear_state();
  if (!image.operator_state.empty()) {
    BinaryReader r(image.operator_state);
    op_->deserialize_state(r);
  }
  source_next_seq_ = image.source_next_seq;
  if (!image.in_port_progress.empty()) {
    MS_CHECK(image.in_port_progress.size() == in_.size());
    for (std::size_t p = 0; p < in_.size(); ++p) {
      in_[p].last_processed_edge_seq = image.in_port_progress[p];
      in_[p].last_received_edge_seq = image.in_port_progress[p];
    }
  }
  if (!image.out_port_next_seq.empty()) {
    MS_CHECK(image.out_port_next_seq.size() == out_.size());
    for (std::size_t p = 0; p < out_.size(); ++p) {
      out_[p].next_edge_seq = image.out_port_next_seq[p];
    }
  }
  return image.inflight;
}

void Hau::run_on_cpu(SimTime cost, std::function<void()> done) {
  MS_CHECK(!failed_);
  const std::uint64_t inc = incarnation_;
  app_->cluster().node(node_).cpu->submit(
      cost, [this, inc, done = std::move(done)] {
        if (incarnation_ != inc) return;
        done();
      });
}

void Hau::schedule(SimTime delay, std::function<void()> fn) {
  const std::uint64_t inc = incarnation_;
  app_->simulation().schedule_after(delay, [this, inc, fn = std::move(fn)] {
    if (incarnation_ != inc || failed_) return;
    fn();
  });
}

void Hau::send_control(Hau& target, Bytes size, std::function<void(Hau&)> fn) {
  Hau* t = &target;
  const std::uint64_t target_inc = t->incarnation();
  app_->cluster().network().send(node_, t->node(), size,
                                 net::MsgCategory::kControl,
                                 [t, target_inc, fn = std::move(fn)] {
                                   if (t->incarnation() != target_inc) return;
                                   fn(*t);
                                 });
}

std::uint64_t Hau::last_processed_edge_seq(int in_port) const {
  return in_.at(static_cast<std::size_t>(in_port)).last_processed_edge_seq;
}

std::size_t Hau::buffered_items(int in_port) const {
  return in_.at(static_cast<std::size_t>(in_port)).buffer.size();
}

Bytes Hau::buffered_bytes() const {
  Bytes b = 0;
  for (const auto& e : in_) {
    for (const auto& item : e.buffer) b += item_wire_size(item);
  }
  return b;
}

void Hau::maybe_schedule_processing() {
  if (!started_ || failed_ || pause_depth_ > 0 || processing_) return;
  if (blocked_on_send()) return;  // backpressure: wait for credits
  const int ports = num_in_ports();
  if (ports == 0) return;  // sources are purely timer-driven
  for (int k = 0; k < ports; ++k) {
    const int p = (rr_next_port_ + k) % ports;
    auto& edge = in_[static_cast<std::size_t>(p)];
    if (edge.blocked || edge.buffer.empty()) continue;
    if (is_token(edge.buffer.front())) {
      const Token token = std::get<Token>(edge.buffer.front());
      const std::size_t before = edge.buffer.size();
      ft_->on_token_at_head(*this, p, token);
      // The attachment either consumed the token or blocked the port; it may
      // also have paused us (synchronous checkpoint) — re-check everything.
      if (!started_ || failed_ || pause_depth_ > 0 || processing_) return;
      MS_CHECK_MSG(edge.blocked || edge.buffer.size() < before,
                   "HauFt left a token at head without blocking");
      // Re-scan from the same position (the next item may be another token).
      --k;
      continue;
    }
    rr_next_port_ = (p + 1) % ports;
    start_processing(p);
    return;
  }
}

void Hau::start_processing(int in_port) {
  auto& edge = in_[static_cast<std::size_t>(in_port)];
  Tuple tuple = std::get<Tuple>(std::move(edge.buffer.front()));
  edge.buffer.pop_front();
  processing_ = true;
  const SimTime cost = op_->cost(in_port, tuple) * cost_multiplier_;
  run_on_cpu(cost, [this, in_port, tuple = std::move(tuple)]() mutable {
    finish_processing(in_port, std::move(tuple));
  });
}

void Hau::finish_processing(int in_port, Tuple tuple) {
  processing_ = false;
  auto& edge = in_[static_cast<std::size_t>(in_port)];
  edge.last_processed_edge_seq = tuple.edge_seq;
  ++tuples_processed_;

  HauOperatorContext ctx(this, &tuple);
  op_->process(in_port, tuple, ctx);

  if (is_sink_) {
    app_->record_sink_tuple(tuple, app_->simulation().now());
  }
  if (app_->is_latency_probe(id_)) {
    app_->record_probe_latency(tuple, app_->simulation().now());
  }
  return_credit(in_port);
  ft_->after_process(*this, in_port, tuple);
  if (pending_post_cost_ > SimTime::zero()) {
    const SimTime extra = pending_post_cost_ * cost_multiplier_;
    pending_post_cost_ = SimTime::zero();
    processing_ = true;
    run_on_cpu(extra, [this] {
      processing_ = false;
      maybe_schedule_processing();
    });
    return;
  }
  maybe_schedule_processing();
}

void Hau::emit_from_context(int out_port, Tuple tuple,
                            const Tuple* current_input) {
  if (failed_) return;
  // Stamp lineage: inherit from the triggering input, or start a fresh
  // lineage from this HAU (sources, window flushes).
  if (current_input != nullptr) {
    if (tuple.event_time == SimTime::zero()) {
      tuple.event_time = current_input->event_time;
    }
    if (tuple.id == 0) {
      tuple.id = current_input->id;
      tuple.source_hau = current_input->source_hau;
      tuple.source_seq = current_input->source_seq;
    }
  } else {
    if (tuple.event_time == SimTime::zero()) {
      tuple.event_time = app_->simulation().now();
    }
    if (tuple.id == 0) {
      tuple.source_hau = static_cast<std::uint32_t>(id_);
      tuple.source_seq = source_next_seq_++;
      tuple.id = Tuple::make_id(tuple.source_hau, tuple.source_seq);
    }
  }
  if (tuple.payload && tuple.wire_size < tuple.payload->byte_size()) {
    tuple.wire_size = tuple.payload->byte_size() + 64;
  }
  if (pause_depth_ > 0) {
    // The SPE thread is suspended (synchronous checkpoint / kernel burst):
    // hold the fully stamped emission until resume. Re-entry through
    // emit_from_context is a no-op for stamping (id and event_time are set).
    pending_emissions_.emplace_back(out_port, std::move(tuple));
    return;
  }
  ft_->emit(*this, out_port, std::move(tuple));
}

}  // namespace ms::core
