// Ablation — delta checkpointing (paper Sec. V: the Cooperative HA
// Solution's technique, which the paper suggests "could be applied jointly"
// with Meteor Shower): write only the state changed since the previous
// checkpoint. Cuts checkpoint disk I/O for append-heavy state; recovery
// still reads the full reconstructed state.
//
// Three-way comparison on BCP under MS-src+ap:
//   full           — every checkpoint snapshots the whole state
//   delta          — per-epoch deltas at the same fixed cadence
//   delta+adaptive — deltas plus the CadenceController retuning the
//                    interval from observed checkpoint cost (MS-src+ap+delta)
#include <cstdio>

#include "ckpt_protocols.h"

int main(int argc, char** argv) {
  using namespace ms;
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  const SimTime window = quick ? SimTime::minutes(2) : SimTime::minutes(8);
  const int tmi_minutes = quick ? 2 : 8;

  struct Mode {
    const char* name;
    Scheme scheme;
    bool delta;
  };
  const Mode kModes[] = {
      {"full", Scheme::kMsSrcAp, false},
      {"delta", Scheme::kMsSrcAp, true},
      {"delta+adaptive", Scheme::kMsSrcApDelta, true},
  };

  std::printf("=== Ablation: delta checkpointing (BCP, MS-src+ap, 4 "
              "checkpoints) ===\n\n");
  TablePrinter table({"mode", "ckpts", "avg ckpt time", "avg written",
                      "throughput"},
                     16);
  JsonResultWriter json;
  for (const Mode& mode : kModes) {
    Experiment exp(AppKind::kBcp, mode.scheme, 4, window, 0x5eedULL,
                   tmi_minutes, [&mode](ft::FtParams& p) {
                     p.delta_checkpoints = mode.delta;
                   });
    exp.warmup();
    exp.measure();
    const auto& ckpts = exp.ms()->checkpoints();
    double total_s = 0.0;
    double written = 0.0;
    int n = 0;
    for (const auto& c : ckpts) {
      total_s += c.slowest.total().to_seconds();
      written += static_cast<double>(c.total_declared);
      ++n;
    }
    table.row({mode.name, fmt(n, 0),
               n > 0 ? fmt(total_s / n, 2) + "s" : "-",
               n > 0 ? fmt_bytes(static_cast<Bytes>(written / n)) : "-",
               fmt(exp.throughput_tuples(), 0)});
    // Trajectory rows (deterministic for the fixed seed). Both tracked
    // values are gate-friendly: ns_per_op holds the lower-is-better average
    // checkpoint duration, tuples_per_sec the higher-is-better throughput.
    // A separate row carries the written volume per checkpoint in ns_per_op
    // (also lower-is-better) so chain-compaction regressions trip the gate.
    json.add(std::string("ablation_delta/") + mode.name, n,
             n > 0 ? (total_s / n) * 1e9 : 0.0, exp.throughput_tuples());
    json.add(std::string("ablation_delta/") + mode.name + "/written_per_ckpt",
             n, n > 0 ? written / n : 0.0, 0.0);
  }
  std::printf("\nBCP's historical-image state is append-mostly between bus "
              "arrivals, so deltas\nshrink the written volume; recovery cost "
              "is unchanged (base + deltas re-read).\nThe adaptive mode "
              "additionally retunes its interval from observed cost\n"
              "(Young/Daly optimum, capped by the recovery budget).\n");

  const std::string jpath = json_path(argc, argv);
  if (!jpath.empty() && !json.write(jpath)) {
    std::fprintf(stderr, "cannot write %s\n", jpath.c_str());
    return 2;
  }
  return 0;
}
