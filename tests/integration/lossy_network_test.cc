// Checkpoint protocol liveness on an unreliable control network: with a
// seeded FaultPlan dropping, duplicating and reordering token and control
// traffic, every scheme still commits checkpoints — token retransmission
// re-drives lost markers, duplicate tokens and reports are idempotent, and
// the data path stays exactly-once throughout.
#include <gtest/gtest.h>

#include <algorithm>

#include "../testing/test_ops.h"
#include "ft/baseline.h"
#include "ft/meteor_shower.h"
#include "net/network.h"

namespace ms::ft {
namespace {

using ms::testing::chain_graph;
using ms::testing::RecordingSink;
using ms::testing::small_cluster;

/// ≥5% loss plus duplication and reordering on the protocol's own traffic;
/// the data plane stays reliable (its ordering is a transport guarantee the
/// receiver dedup logic builds on).
net::FaultPlan lossy_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  for (const auto c : {net::MsgCategory::kToken, net::MsgCategory::kControl}) {
    plan.spec(c).drop = 0.08;
    plan.spec(c).duplicate = 0.08;
    plan.spec(c).reorder = 0.10;
  }
  return plan;
}

class LossyNetworkTest : public ::testing::TestWithParam<MsVariant> {
 protected:
  void build(MsVariant variant, std::uint64_t seed) {
    cluster_ = std::make_unique<core::Cluster>(&sim_, small_cluster(8));
    app_ = std::make_unique<core::Application>(
        cluster_.get(), chain_graph(2, SimTime::millis(10)));
    app_->deploy();
    FtParams p;
    p.periodic = true;
    p.checkpoint_period = SimTime::seconds(2);
    p.token_retransmit_timeout = SimTime::seconds(1);
    scheme_ = std::make_unique<MsScheme>(app_.get(), p, variant);
    scheme_->attach();
    cluster_->network().set_fault_plan(lossy_plan(seed));
    app_->start();
    scheme_->start();
  }

  sim::Simulation sim_;
  std::unique_ptr<core::Cluster> cluster_;
  std::unique_ptr<core::Application> app_;
  std::unique_ptr<MsScheme> scheme_;
};

TEST_P(LossyNetworkTest, CheckpointsStillCommitUnderTokenAndControlLoss) {
  build(GetParam(), 20240817);
  sim_.run_until(SimTime::seconds(30));

  // The protocol stayed live: a healthy majority of the ~14 periodic epochs
  // completed despite every token and report being at risk.
  EXPECT_GE(scheme_->checkpoints().size(), 5u);

  // Retransmission actually did work (otherwise the tolerances above pass
  // vacuously on a lucky seed).
  const auto& st = cluster_->network().stats();
  EXPECT_GT(st.dropped_of(net::MsgCategory::kToken) +
                st.dropped_of(net::MsgCategory::kControl),
            0);
  EXPECT_GT(st.duplicated, 0);

  // The data plane was untouched: sink output is gapless and duplicate-free.
  auto& sink = static_cast<RecordingSink&>(app_->hau(3).op());
  std::vector<std::int64_t> values = sink.values;
  std::sort(values.begin(), values.end());
  ASSERT_GT(values.size(), 1000u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], static_cast<std::int64_t>(i));
  }
}

TEST_P(LossyNetworkTest, ASecondSeedAlsoConverges) {
  build(GetParam(), 99);
  sim_.run_until(SimTime::seconds(30));
  EXPECT_GE(scheme_->checkpoints().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, LossyNetworkTest,
                         ::testing::Values(MsVariant::kSrc, MsVariant::kSrcAp,
                                           MsVariant::kSrcApAa),
                         [](const ::testing::TestParamInfo<MsVariant>& info) {
                           switch (info.param) {
                             case MsVariant::kSrc: return "MsSrc";
                             case MsVariant::kSrcAp: return "MsSrcAp";
                             case MsVariant::kSrcApAa: return "MsSrcApAa";
                           }
                           return "Unknown";
                         });

// The baseline has no tokens, but its per-unit checkpoints ride the same
// unreliable network; they must keep completing too.
TEST(LossyBaselineTest, PerUnitCheckpointsSurviveControlLoss) {
  sim::Simulation sim;
  auto cluster = std::make_unique<core::Cluster>(&sim, small_cluster(8));
  auto app = std::make_unique<core::Application>(
      cluster.get(), chain_graph(2, SimTime::millis(10)));
  app->deploy();
  FtParams p;
  p.checkpoint_period = SimTime::seconds(2);
  BaselineScheme scheme(app.get(), p);
  scheme.attach();
  cluster->network().set_fault_plan(lossy_plan(5));
  app->start();
  sim.run_until(SimTime::seconds(20));
  // 4 HAUs at a 2s period over 20s: well over a dozen even with loss.
  EXPECT_GE(scheme.reports().size(), 12u);
}

}  // namespace
}  // namespace ms::ft
