#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ms {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (prev < now && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      in_flight.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // destructor drains and joins
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, SubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  // wait_idle covers nested submission because the inner task enqueues
  // before the outer one completes only sometimes — poll instead.
  for (int i = 0; i < 200 && count.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace ms
