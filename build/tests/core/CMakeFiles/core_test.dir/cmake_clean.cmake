file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/application_test.cc.o"
  "CMakeFiles/core_test.dir/application_test.cc.o.d"
  "CMakeFiles/core_test.dir/flow_control_test.cc.o"
  "CMakeFiles/core_test.dir/flow_control_test.cc.o.d"
  "CMakeFiles/core_test.dir/hau_test.cc.o"
  "CMakeFiles/core_test.dir/hau_test.cc.o.d"
  "CMakeFiles/core_test.dir/operator_context_test.cc.o"
  "CMakeFiles/core_test.dir/operator_context_test.cc.o.d"
  "CMakeFiles/core_test.dir/query_graph_test.cc.o"
  "CMakeFiles/core_test.dir/query_graph_test.cc.o.d"
  "CMakeFiles/core_test.dir/stdops_test.cc.o"
  "CMakeFiles/core_test.dir/stdops_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
