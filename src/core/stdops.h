// Standard reusable operators: the small algebra every streaming job needs
// — map, filter, key-route, tumbling-window aggregate, union and fan-out —
// with checkpointable state where they have any. Applications compose these
// with their own kernels; the examples and tests use them heavily.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/operator.h"

namespace ms::core {

/// Stateless 1-in-1-out transform. The function may return an empty
/// optional-like null payload to drop the tuple (combine with FilterOperator
/// for clarity instead).
class MapOperator final : public Operator {
 public:
  using Fn = std::function<Tuple(const Tuple&, OperatorContext&)>;

  MapOperator(std::string name, Fn fn)
      : Operator(std::move(name)), fn_(std::move(fn)) {}

  void process(int, const Tuple& t, OperatorContext& ctx) override {
    ctx.emit(0, fn_(t, ctx));
  }
  Bytes state_size() const override { return 0; }

 private:
  Fn fn_;
};

/// Stateless predicate filter.
class FilterOperator final : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  FilterOperator(std::string name, Predicate pred)
      : Operator(std::move(name)), pred_(std::move(pred)) {}

  void process(int, const Tuple& t, OperatorContext& ctx) override {
    if (pred_(t)) {
      ctx.emit(0, t);
    } else {
      ++dropped_;
    }
  }
  Bytes state_size() const override { return 8; }
  void serialize_state(BinaryWriter& w) const override { w.write(dropped_); }
  void deserialize_state(BinaryReader& r) override {
    dropped_ = r.read<std::int64_t>();
  }
  void clear_state() override { dropped_ = 0; }
  std::int64_t dropped() const { return dropped_; }

 private:
  Predicate pred_;
  std::int64_t dropped_ = 0;
};

/// Routes each tuple to out-port key(t) % num_out_ports — the "Dispatcher" /
/// "Group" pattern of the paper's applications.
class KeyRouteOperator final : public Operator {
 public:
  using KeyFn = std::function<std::uint64_t(const Tuple&)>;

  KeyRouteOperator(std::string name, KeyFn key)
      : Operator(std::move(name)), key_(std::move(key)) {}

  void process(int, const Tuple& t, OperatorContext& ctx) override {
    const int port = static_cast<int>(
        key_(t) % static_cast<std::uint64_t>(ctx.num_out_ports()));
    ctx.emit(port, t);
  }
  Bytes state_size() const override { return 0; }

 private:
  KeyFn key_;
};

/// Broadcasts every input tuple to all out-ports.
class FanOutOperator final : public Operator {
 public:
  explicit FanOutOperator(std::string name) : Operator(std::move(name)) {}

  void process(int, const Tuple& t, OperatorContext& ctx) override {
    for (int p = 0; p < ctx.num_out_ports(); ++p) ctx.emit(p, t);
  }
  Bytes state_size() const override { return 0; }
};

/// Merges all in-ports into one output stream (stream union).
class UnionOperator final : public Operator {
 public:
  explicit UnionOperator(std::string name) : Operator(std::move(name)) {}

  void process(int, const Tuple& t, OperatorContext& ctx) override {
    ctx.emit(0, t);
  }
  Bytes state_size() const override { return 0; }
};

/// Source emitting `burst` tuples per timer tick (built by a caller-supplied
/// factory that receives the emission sequence number), optionally stopping
/// after `limit` tuples. A burst of thousands per tick saturates the engine's
/// transport instead of its timer wheel, which is what throughput workloads
/// and the batching benchmarks need; `limit` gives tests a fixed, exactly-
/// reproducible tuple count. Like CounterSource in the tests, the sequence
/// counter models the external world: restore does not rewind it.
class BurstSourceOperator final : public Operator {
 public:
  using MakeFn = std::function<Tuple(std::int64_t seq)>;

  BurstSourceOperator(std::string name, SimTime period, std::int64_t burst,
                      MakeFn make, std::int64_t limit = -1)
      : Operator(std::move(name)),
        period_(period),
        burst_(burst),
        make_(std::move(make)),
        limit_(limit) {}

  void on_open(OperatorContext& ctx) override { arm(ctx); }
  void process(int, const Tuple&, OperatorContext&) override {}

  Bytes state_size() const override { return 16; }
  void serialize_state(BinaryWriter& w) const override { w.write(next_); }
  void deserialize_state(BinaryReader& r) override {
    (void)r.read<std::int64_t>();  // the external feed does not rewind
  }

  std::int64_t emitted() const { return next_; }
  bool done() const { return limit_ >= 0 && next_ >= limit_; }

 private:
  void arm(OperatorContext& ctx) {
    ctx.schedule(period_, [this](OperatorContext& c) {
      const int ports = c.num_out_ports();
      for (std::int64_t i = 0; i < burst_ && !done(); ++i) {
        Tuple t = make_(next_);
        // Round-robin across out ports; the common single-port case skips
        // the per-tuple 64-bit division.
        const int port = ports == 1 ? 0 : static_cast<int>(next_ % ports);
        c.emit(port, std::move(t));
        ++next_;
      }
      if (!done()) arm(c);
    });
  }

  SimTime period_;
  std::int64_t burst_;
  MakeFn make_;
  std::int64_t limit_;
  std::int64_t next_ = 0;
};

/// Tumbling-window keyed aggregation: accumulates `double` values per key,
/// emits one summary tuple per key at each window boundary, then clears —
/// the same batch-discard state pattern as the paper's dynamic HAUs, so
/// this operator also demonstrates delta tracking and state_size hints.
class TumblingAggregateOperator final : public Operator {
 public:
  struct Summary final : public Payload {
    Summary(std::uint64_t key, double sum, std::int64_t count)
        : key(key), sum(sum), count(count) {}
    std::uint64_t key;
    double sum;
    std::int64_t count;
    Bytes byte_size() const override { return 96; }
    const char* type_name() const override { return "window_summary"; }
  };

  using KeyFn = std::function<std::uint64_t(const Tuple&)>;
  using ValueFn = std::function<double(const Tuple&)>;

  TumblingAggregateOperator(std::string name, SimTime window, KeyFn key,
                            ValueFn value, Bytes declared_entry_bytes = 64)
      : Operator(std::move(name)),
        window_(window),
        key_(std::move(key)),
        value_(std::move(value)),
        entry_bytes_(declared_entry_bytes) {
    state_registry().add_fixed_element("window_state", &acc_, entry_bytes_);
  }

  void on_open(OperatorContext& ctx) override {
    ctx.schedule(window_, [this](OperatorContext& c) { flush(c); });
  }

  void process(int, const Tuple& t, OperatorContext&) override {
    auto& [sum, count] = acc_[key_(t)];
    sum += value_(t);
    count += 1;
    delta_bytes_ += entry_bytes_;
  }

  Bytes state_size() const override { return state_registry().total(); }
  Bytes state_delta_size() const override {
    return std::min(delta_bytes_, state_size());
  }
  void mark_checkpointed() override { delta_bytes_ = 0; }

  void serialize_state(BinaryWriter& w) const override {
    w.write<std::uint64_t>(acc_.size());
    for (const auto& [k, sc] : acc_) {
      w.write(k);
      w.write(sc.first);
      w.write(sc.second);
    }
    w.write(windows_);
  }
  void deserialize_state(BinaryReader& r) override {
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = r.read<std::uint64_t>();
      const auto sum = r.read<double>();
      const auto count = r.read<std::int64_t>();
      acc_[k] = {sum, count};
    }
    windows_ = r.read<std::int64_t>();
  }
  void clear_state() override {
    acc_.clear();
    windows_ = 0;
    delta_bytes_ = 0;
  }

  std::int64_t windows_completed() const { return windows_; }
  std::size_t keys_in_window() const { return acc_.size(); }

 private:
  void flush(OperatorContext& ctx) {
    for (const auto& [k, sc] : acc_) {
      Tuple out;
      out.wire_size = 96;
      out.payload = std::make_shared<Summary>(k, sc.first, sc.second);
      ctx.emit(0, out);
    }
    acc_.clear();
    delta_bytes_ = 0;
    ++windows_;
    ctx.schedule(window_, [this](OperatorContext& c) { flush(c); });
  }

  SimTime window_;
  KeyFn key_;
  ValueFn value_;
  Bytes entry_bytes_;
  std::map<std::uint64_t, std::pair<double, std::int64_t>> acc_;
  Bytes delta_bytes_ = 0;
  std::int64_t windows_ = 0;
};

}  // namespace ms::core
