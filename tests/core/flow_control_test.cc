// Credit-based flow control: output queues, backpressure propagation,
// dispatch timestamping, token queue-jumping, and reconnection resets.
#include <gtest/gtest.h>

#include "../testing/test_ops.h"
#include "core/application.h"
#include "core/hau.h"

namespace ms::core {
namespace {

using ms::testing::chain_graph;
using ms::testing::CounterSource;
using ms::testing::RecordingSink;
using ms::testing::RelayOperator;
using ms::testing::small_cluster;

class FlowControlTest : public ::testing::Test {
 protected:
  void build(int relays, int window, SimTime source_period) {
    auto params = small_cluster(relays + 2);
    params.flow_window = window;
    cluster_ = std::make_unique<Cluster>(&sim_, params);
    app_ = std::make_unique<Application>(cluster_.get(),
                                         chain_graph(relays, source_period));
    app_->deploy();
    app_->start();
  }

  sim::Simulation sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Application> app_;
};

TEST_F(FlowControlTest, PausedConsumerLimitsInFlightToWindow) {
  build(1, /*window=*/8, SimTime::millis(5));
  Hau& relay = app_->hau(1);
  relay.pause();
  sim_.run_until(SimTime::seconds(2));
  // At most `window` tuples reached the paused relay; the rest queue at the
  // source's out-edge.
  EXPECT_LE(relay.buffered_items(0), 8u);
  Hau& src = app_->hau(0);
  EXPECT_GT(src.pending_out_tuples(), 100u);
  EXPECT_GT(src.pending_out_bytes(), 0);
}

TEST_F(FlowControlTest, CreditsFlowBackAfterResume) {
  build(1, 8, SimTime::millis(5));
  Hau& relay = app_->hau(1);
  relay.pause();
  sim_.run_until(SimTime::seconds(1));
  relay.resume();
  sim_.run_until(SimTime::seconds(4));
  // The backlog drains: the sink received (almost) everything emitted.
  auto& sink = static_cast<RecordingSink&>(app_->hau(2).op());
  EXPECT_GT(sink.values.size(), 700u);
  // Order preserved end to end despite the stall.
  for (std::size_t i = 0; i < sink.values.size(); ++i) {
    EXPECT_EQ(sink.values[i], static_cast<std::int64_t>(i));
  }
}

TEST_F(FlowControlTest, BackpressurePropagatesUpstream) {
  build(2, 4, SimTime::millis(5));
  // Pause the LAST relay; the first relay must eventually stall too.
  Hau& relay0 = app_->hau(1);
  Hau& relay1 = app_->hau(2);
  relay1.pause();
  sim_.run_until(SimTime::seconds(2));
  const auto processed_at_stall = relay0.tuples_processed();
  sim_.run_until(SimTime::seconds(3));
  // relay0 is blocked on send (its window to relay1 is exhausted).
  EXPECT_LE(relay0.tuples_processed() - processed_at_stall, 1u);
  EXPECT_GT(relay0.pending_out_tuples(), 0u);
}

TEST_F(FlowControlTest, SourceTuplesTimestampedAtDispatchNotGeneration) {
  build(1, 4, SimTime::millis(5));
  Hau& relay = app_->hau(1);
  relay.pause();
  sim_.run_until(SimTime::seconds(2));  // large ingest backlog accumulates
  relay.resume();
  sim_.run_until(SimTime::seconds(6));
  // If event_time were stamped at generation, tuples would carry multi-
  // second queue waits and the mean latency would be in the seconds.
  EXPECT_LT(app_->latency().mean(), SimTime::millis(500));
  EXPECT_GT(app_->latency().count(), 100);
}

TEST_F(FlowControlTest, JumpQueueTokenOvertakesPendingTuples) {
  build(1, 4, SimTime::millis(5));
  Hau& src = app_->hau(0);
  Hau& relay = app_->hau(1);
  relay.pause();  // freeze consumption so the source accumulates pending
  sim_.run_until(SimTime::seconds(1));
  ASSERT_GT(src.pending_out_tuples(), 10u);
  src.send_token(0, Token{42, true}, /*jump_queue=*/true);
  relay.resume();
  // The token reaches the relay's buffer ahead of the pending tuples: the
  // default HauFt drops it, and everything still arrives in order.
  sim_.run_until(SimTime::seconds(4));
  auto& sink = static_cast<RecordingSink&>(app_->hau(2).op());
  for (std::size_t i = 0; i < sink.values.size(); ++i) {
    EXPECT_EQ(sink.values[i], static_cast<std::int64_t>(i));
  }
}

TEST_F(FlowControlTest, PendingBehindTokensReportsQueuedTuples) {
  build(1, 4, SimTime::millis(5));
  Hau& src = app_->hau(0);
  app_->hau(1).pause();
  sim_.run_until(SimTime::seconds(1));
  src.send_token(0, Token{7, true}, /*jump_queue=*/true);
  const auto pending = src.pending_behind_tokens();
  EXPECT_EQ(pending.size(), src.pending_out_tuples());
  for (const auto& [port, tuple] : pending) {
    EXPECT_EQ(port, 0);
    EXPECT_GT(tuple.edge_seq, 0u);
  }
}

TEST_F(FlowControlTest, ResetEdgeFlowDropsPendingAndRestoresCredits) {
  build(1, 4, SimTime::millis(5));
  Hau& src = app_->hau(0);
  app_->hau(1).pause();
  sim_.run_until(SimTime::seconds(1));
  ASSERT_GT(src.pending_out_tuples(), 0u);
  src.reset_edge_flow(0);
  EXPECT_EQ(src.pending_out_tuples(), 0u);
}

TEST_F(FlowControlTest, TokensConsumeAndReturnCredits) {
  build(1, 4, SimTime::millis(50));  // slow source: no data backlog
  Hau& src = app_->hau(0);
  sim_.run_until(SimTime::millis(200));
  // Send more tokens than the window; all are eventually delivered and
  // dropped by the default FT, which must return their credits.
  for (int i = 0; i < 12; ++i) src.send_token(0, Token{static_cast<std::uint64_t>(i), false});
  sim_.run_until(SimTime::seconds(3));
  EXPECT_EQ(src.pending_out_tuples(), 0u);
  // Data still flows afterwards: credits were returned for every token.
  auto& sink = static_cast<RecordingSink&>(app_->hau(2).op());
  const auto n = sink.values.size();
  sim_.run_until(SimTime::seconds(5));
  EXPECT_GT(sink.values.size(), n + 20);
}

class WindowSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweepTest, ExactlyOnceOrderedDeliveryForAnyWindow) {
  sim::Simulation sim;
  auto params = small_cluster(4);
  params.flow_window = GetParam();
  Cluster cluster(&sim, params);
  Application app(&cluster, chain_graph(2, SimTime::millis(4)));
  app.deploy();
  app.start();
  sim.run_until(SimTime::seconds(4));
  auto& sink = static_cast<RecordingSink&>(app.hau(3).op());
  ASSERT_GT(sink.values.size(), 100u);
  for (std::size_t i = 0; i < sink.values.size(); ++i) {
    ASSERT_EQ(sink.values[i], static_cast<std::int64_t>(i))
        << "window=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweepTest,
                         ::testing::Values(1, 2, 4, 16, 64, 256));

}  // namespace
}  // namespace ms::core
