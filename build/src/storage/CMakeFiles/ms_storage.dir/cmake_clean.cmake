file(REMOVE_RECURSE
  "CMakeFiles/ms_storage.dir/disk.cc.o"
  "CMakeFiles/ms_storage.dir/disk.cc.o.d"
  "CMakeFiles/ms_storage.dir/stores.cc.o"
  "CMakeFiles/ms_storage.dir/stores.cc.o.d"
  "libms_storage.a"
  "libms_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
