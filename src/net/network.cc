#include "net/network.h"

#include <algorithm>
#include <numeric>

namespace ms::net {

const char* msg_category_name(MsgCategory c) {
  switch (c) {
    case MsgCategory::kData: return "data";
    case MsgCategory::kToken: return "token";
    case MsgCategory::kControl: return "control";
    case MsgCategory::kAck: return "ack";
    case MsgCategory::kCheckpoint: return "checkpoint";
    case MsgCategory::kPreserve: return "preserve";
    case MsgCategory::kReplay: return "replay";
    case MsgCategory::kCount: break;
  }
  return "?";
}

std::int64_t NetworkStats::total_bytes() const {
  return std::accumulate(bytes.begin(), bytes.end(), std::int64_t{0});
}

Network::Network(sim::Simulation* sim, const Topology* topo)
    : sim_(sim), topo_(topo) {
  MS_CHECK(sim != nullptr && topo != nullptr);
  const auto n = static_cast<std::size_t>(topo_->num_nodes());
  alive_.assign(n, true);
  tx_busy_until_.assign(n, SimTime::zero());
  rx_busy_until_.assign(n, SimTime::zero());
}

void Network::send(NodeId from, NodeId to, Bytes size, MsgCategory category,
                   std::function<void()> deliver,
                   std::function<void()> on_dropped) {
  MS_CHECK(from >= 0 && from < topo_->num_nodes());
  MS_CHECK(to >= 0 && to < topo_->num_nodes());
  MS_CHECK(size >= 0);

  auto& st = stats_;
  ++st.messages[static_cast<std::size_t>(category)];
  st.bytes[static_cast<std::size_t>(category)] += size;

  if (!alive_[static_cast<std::size_t>(from)]) {
    ++st.dropped;
    if (on_dropped) sim_->schedule_after(SimTime::zero(), std::move(on_dropped));
    return;
  }

  const auto& cfg = topo_->config();
  const SimTime ser = transfer_time(size, cfg.nic_bandwidth);
  const SimTime now = sim_->now();

  // Transmit NIC: FIFO serialization.
  SimTime& tx = tx_busy_until_[static_cast<std::size_t>(from)];
  const SimTime tx_start = std::max(now + cfg.per_message_overhead, tx);
  tx = tx_start + ser;

  // Receive NIC: bits arrive after propagation latency, then are clocked in
  // at NIC bandwidth behind earlier arrivals.
  const SimTime first_bit = tx_start + topo_->latency(from, to);
  SimTime& rx = rx_busy_until_[static_cast<std::size_t>(to)];
  const SimTime delivered_at = std::max(first_bit, rx) + ser;
  rx = delivered_at;

  sim_->schedule_at(
      delivered_at,
      [this, from, to, deliver = std::move(deliver),
       on_dropped = std::move(on_dropped)]() mutable {
        if (!alive_[static_cast<std::size_t>(from)] ||
            !alive_[static_cast<std::size_t>(to)]) {
          ++stats_.dropped;
          if (on_dropped) on_dropped();
          return;
        }
        deliver();
      });
}

void Network::set_alive(NodeId n, bool alive) {
  MS_CHECK(n >= 0 && n < topo_->num_nodes());
  alive_[static_cast<std::size_t>(n)] = alive;
}

bool Network::alive(NodeId n) const {
  MS_CHECK(n >= 0 && n < topo_->num_nodes());
  return alive_[static_cast<std::size_t>(n)];
}

void Network::reset_node(NodeId n) {
  MS_CHECK(n >= 0 && n < topo_->num_nodes());
  tx_busy_until_[static_cast<std::size_t>(n)] = sim_->now();
  rx_busy_until_[static_cast<std::size_t>(n)] = sim_->now();
}

}  // namespace ms::net
