#include "core/hau.h"

#include <gtest/gtest.h>

#include "../testing/test_ops.h"
#include "core/application.h"

namespace ms::core {
namespace {

using ms::testing::chain_graph;
using ms::testing::CounterSource;
using ms::testing::IntPayload;
using ms::testing::RecordingSink;
using ms::testing::RelayOperator;
using ms::testing::small_cluster;

class HauTest : public ::testing::Test {
 protected:
  void build_chain(int relays) {
    cluster_ = std::make_unique<Cluster>(&sim_, small_cluster(relays + 2));
    app_ = std::make_unique<Application>(cluster_.get(),
                                         chain_graph(relays, SimTime::millis(10)));
    app_->deploy();
  }

  sim::Simulation sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Application> app_;
};

TEST_F(HauTest, TuplesFlowSourceToSink) {
  build_chain(2);
  app_->start();
  sim_.run_until(SimTime::seconds(1));
  auto& sink = static_cast<RecordingSink&>(app_->hau(3).op());
  // 100 emissions in 1 s at 10 ms period (minus pipeline fill).
  EXPECT_GE(sink.values.size(), 95u);
  // Values are the consecutive integers, in order.
  for (std::size_t i = 0; i < sink.values.size(); ++i) {
    EXPECT_EQ(sink.values[i], static_cast<std::int64_t>(i));
  }
}

TEST_F(HauTest, LatencyIsRecordedAtSink) {
  build_chain(2);
  app_->start();
  sim_.run_until(SimTime::seconds(1));
  EXPECT_GT(app_->sink_tuple_count(), 0);
  // Chain latency: ~3 hops of network + processing, well under 10 ms here.
  EXPECT_GT(app_->latency().mean(), SimTime::zero());
  EXPECT_LT(app_->latency().mean(), SimTime::millis(10));
}

TEST_F(HauTest, PauseStopsProcessingResumeDrains) {
  build_chain(1);
  app_->start();
  Hau& relay = app_->hau(1);
  sim_.schedule_at(SimTime::millis(100), [&] { relay.pause(); });
  sim_.run_until(SimTime::millis(500));
  const auto processed_at_pause = relay.tuples_processed();
  sim_.run_until(SimTime::millis(900));
  EXPECT_EQ(relay.tuples_processed(), processed_at_pause);
  EXPECT_GT(relay.buffered_items(0), 0u);
  relay.resume();
  sim_.run_until(SimTime::seconds(2));
  EXPECT_GT(relay.tuples_processed(), processed_at_pause + 50);
}

TEST_F(HauTest, NestedPauseNeedsMatchingResumes) {
  build_chain(1);
  app_->start();
  Hau& relay = app_->hau(1);
  relay.pause();
  relay.pause();
  relay.resume();
  EXPECT_TRUE(relay.paused());
  relay.resume();
  EXPECT_FALSE(relay.paused());
}

TEST_F(HauTest, BlockedPortHoldsTuples) {
  build_chain(1);
  app_->start();
  Hau& relay = app_->hau(1);
  relay.block_port(0);
  sim_.run_until(SimTime::millis(300));
  EXPECT_EQ(relay.tuples_processed(), 0u);
  EXPECT_GT(relay.buffered_items(0), 10u);
  relay.unblock_port(0);
  sim_.run_until(SimTime::millis(600));
  EXPECT_GT(relay.tuples_processed(), 20u);
}

TEST_F(HauTest, TokenAtHeadInvokesFtAndDefaultDropsIt) {
  build_chain(1);
  app_->start();
  sim_.run_until(SimTime::millis(50));
  Hau& src = app_->hau(0);
  src.send_token(0, Token{7, false});
  sim_.run_until(SimTime::millis(200));
  // Default HauFt drops stray tokens; stream keeps flowing.
  auto& sink = static_cast<RecordingSink&>(app_->hau(2).op());
  EXPECT_GT(sink.values.size(), 10u);
}

TEST_F(HauTest, StateCaptureRestoreRoundTrip) {
  build_chain(1);
  app_->start();
  sim_.run_until(SimTime::millis(500));
  Hau& relay = app_->hau(1);
  auto& op = static_cast<RelayOperator&>(relay.op());
  const std::int64_t sum = op.sum();
  const std::int64_t seen = op.seen();
  ASSERT_GT(seen, 0);

  const CheckpointImage image = relay.capture_state({}, 1);
  EXPECT_EQ(image.checkpoint_id, 1u);
  EXPECT_FALSE(image.operator_state.empty());

  sim_.run_until(SimTime::seconds(1));
  EXPECT_GT(op.seen(), seen);

  relay.restore_state(image);
  EXPECT_EQ(op.sum(), sum);
  EXPECT_EQ(op.seen(), seen);
}

TEST_F(HauTest, CaptureIncludesEdgeProgress) {
  build_chain(1);
  app_->start();
  sim_.run_until(SimTime::millis(500));
  Hau& relay = app_->hau(1);
  const CheckpointImage image = relay.capture_state({}, 2);
  ASSERT_EQ(image.in_port_progress.size(), 1u);
  EXPECT_EQ(image.in_port_progress[0], relay.last_processed_edge_seq(0));
  ASSERT_EQ(image.out_port_next_seq.size(), 1u);
  EXPECT_GT(image.out_port_next_seq[0], 1u);
}

TEST_F(HauTest, DuplicateEdgeSeqIsDropped) {
  build_chain(1);
  app_->start();
  sim_.run_until(SimTime::millis(200));
  Hau& relay = app_->hau(1);
  const auto processed = relay.tuples_processed();
  // Re-deliver a stale tuple with an old sequence number.
  Tuple dup;
  dup.edge_seq = 1;
  dup.wire_size = 64;
  dup.payload = std::make_shared<IntPayload>(0);
  relay.receive(0, StreamItem(std::move(dup)));
  sim_.run_until(SimTime::millis(210));
  // Nothing extra beyond the regular stream was processed.
  EXPECT_LE(relay.tuples_processed(), processed + 2);
}

TEST_F(HauTest, FailureDropsBuffersAndOrphansMessages) {
  build_chain(1);
  app_->start();
  sim_.run_until(SimTime::millis(300));
  Hau& relay = app_->hau(1);
  relay.on_node_failed();
  EXPECT_TRUE(relay.failed());
  EXPECT_EQ(relay.buffered_items(0), 0u);
  sim_.run_until(SimTime::millis(600));
  EXPECT_TRUE(relay.failed());
}

TEST_F(HauTest, RestartClearsStateAndReopenResumes) {
  build_chain(1);
  app_->start();
  sim_.run_until(SimTime::millis(300));
  Hau& relay = app_->hau(1);
  auto& op = static_cast<RelayOperator&>(relay.op());
  relay.on_node_failed();
  const auto inc_before = relay.incarnation();
  relay.restart_on(relay.node());
  EXPECT_GT(relay.incarnation(), inc_before);
  EXPECT_EQ(op.seen(), 0);
  relay.reopen();
  sim_.run_until(SimTime::seconds(1));
  EXPECT_GT(op.seen(), 0);
}

TEST_F(HauTest, CostMultiplierSlowsProcessing) {
  build_chain(1);
  // Two runs: with and without multiplier; compare processed counts under a
  // saturated operator. Saturate by making the relay slow.
  app_->start();
  Hau& relay = app_->hau(1);
  relay.op().costs().base = SimTime::millis(9);
  sim_.run_until(SimTime::seconds(2));
  const auto base_count = relay.tuples_processed();
  relay.set_cost_multiplier(3.0);
  sim_.run_until(SimTime::seconds(4));
  const auto taxed = relay.tuples_processed() - base_count;
  EXPECT_LT(taxed, base_count / 2);
}

TEST_F(HauTest, FindOutPort) {
  build_chain(2);
  Hau& src = app_->hau(0);
  Hau& relay0 = app_->hau(1);
  EXPECT_EQ(src.find_out_port(relay0, 0), 0);
}

TEST_F(HauTest, BufferedBytesTracksQueue) {
  build_chain(1);
  app_->start();
  Hau& relay = app_->hau(1);
  relay.pause();
  sim_.run_until(SimTime::millis(200));
  EXPECT_GT(relay.buffered_bytes(), 0);
  EXPECT_EQ(relay.buffered_bytes(),
            static_cast<Bytes>(relay.buffered_items(0)) * 128);
}

}  // namespace
}  // namespace ms::core
