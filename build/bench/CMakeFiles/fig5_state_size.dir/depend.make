# Empty dependencies file for fig5_state_size.
# This may be replaced when dependencies are built.
