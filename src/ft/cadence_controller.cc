#include "ft/cadence_controller.h"

#include <algorithm>
#include <cmath>

namespace ms::ft {

CadenceController::CadenceController(const FtParams& params)
    : params_(params), interval_(params.checkpoint_period) {
  min_ = params_.checkpoint_period * params_.cadence_min_factor;
  max_ = params_.checkpoint_period * params_.cadence_max_factor;
  if (min_ < SimTime::nanos(1)) min_ = SimTime::nanos(1);
  if (max_ < min_) max_ = min_;
}

void CadenceController::on_checkpoint_complete(SimTime cost, Bytes bytes) {
  const double c = std::max(cost.to_seconds(), 0.0);
  const double b = static_cast<double>(std::max<Bytes>(bytes, 0));
  if (!have_sample_) {
    cost_s_ = c;
    bytes_ = b;
    have_sample_ = true;
  } else {
    const double a = std::clamp(params_.cadence_smoothing, 0.0, 1.0);
    cost_s_ += a * (c - cost_s_);
    bytes_ += a * (b - bytes_);
  }
  retune();
}

void CadenceController::on_failure_event(SimTime now) {
  ++failure_events_;
  if (have_failure_ && now > last_failure_) {
    const double gap = (now - last_failure_).to_seconds();
    if (gap_s_ <= 0.0) {
      gap_s_ = gap;
    } else {
      const double a = std::clamp(params_.cadence_smoothing, 0.0, 1.0);
      gap_s_ += a * (gap - gap_s_);
    }
  }
  last_failure_ = now;
  have_failure_ = true;
  // A fresh verdict shifts the failure-rate input immediately; don't wait
  // for the next checkpoint sample to act on it.
  if (have_sample_) retune();
}

void CadenceController::retune() {
  // Young's first-order optimum: the interval that balances checkpoint tax
  // against expected rework, T = sqrt(2 * C * MTBF). The MTBF input is the
  // live inter-failure estimate when enabled and warmed up, else the
  // configured constant.
  const double mtbf_s = params_.cadence_live_mtbf && gap_s_ > 0.0
                            ? gap_s_
                            : params_.mtbf.to_seconds();
  double t = std::sqrt(2.0 * cost_s_ * mtbf_s);
  // Recovery budget: a failure forces replay of ~one interval of input at
  // replay_speedup; keep that catch-up time within the budget.
  if (params_.recovery_budget > SimTime::zero() && params_.replay_speedup > 0) {
    t = std::min(t, params_.recovery_budget.to_seconds() * params_.replay_speedup);
  }
  interval_ = std::clamp(SimTime::seconds(t), min_, max_);
  ++retunes_;
}

}  // namespace ms::ft
