// Application-aware checkpointing demo — watch MS-src+ap+aa learn an
// application's state-size pattern and time its checkpoints.
//
// SignalGuru's motion filters hold every frame of a vehicle's approach and
// purge when the vehicle leaves, so the aggregate state swings by hundreds
// of megabytes. The demo runs the aa pipeline (observation -> profiling ->
// execution), prints the dynamic-HAU detection and thresholds, then
// compares the state each execution-phase checkpoint captured against the
// running average — the paper's Sec. II-B2 claim in action.
#include <cstdio>

#include "apps/signalguru.h"
#include "core/application.h"
#include "ft/meteor_shower.h"

int main() {
  using namespace ms;

  std::printf("=== Application-aware checkpointing (SignalGuru) ===\n\n");

  sim::Simulation sim;
  core::ClusterParams cp;
  cp.network.num_nodes = 60;
  core::Cluster cluster(&sim, cp);

  apps::SgConfig cfg;
  cfg.frame_bytes = 256_KB;
  core::Application app(&cluster, apps::build_signalguru(cfg));
  app.deploy();
  const auto layout = apps::signalguru_layout(cfg);

  ft::FtParams params;
  params.periodic = true;
  params.checkpoint_period = SimTime::seconds(60);
  params.profile_periods = 2;
  ft::MsScheme scheme(&app, params, ft::MsVariant::kSrcApAa);
  scheme.attach();
  app.start();
  scheme.start();

  // Observe the aggregate motion-filter state while the pipeline learns.
  double sum_state = 0.0;
  int samples = 0;
  for (int t = 5; t <= 600; t += 5) {
    sim.run_until(SimTime::seconds(t));
    Bytes state = 0;
    for (const int h : layout.motion_filters) state += app.hau(h).state_size();
    sum_state += static_cast<double>(state);
    ++samples;
    if (t == 60) {
      std::printf("t=60s (observation done): dynamic HAUs = ");
      for (const int h : scheme.aa().dynamic_haus()) {
        std::printf("%s ", app.hau(h).name().c_str());
      }
      std::printf("\n");
    }
    if (t == 185) {
      std::printf("t=185s (profiling done): smin=%s smax=%s\n",
                  format_bytes(static_cast<Bytes>(scheme.aa().smin())).c_str(),
                  format_bytes(static_cast<Bytes>(scheme.aa().smax())).c_str());
    }
  }

  const double avg_state = sum_state / samples;
  std::printf("\naverage dynamic state over the run: %s\n",
              format_bytes(static_cast<Bytes>(avg_state)).c_str());
  std::printf("\nexecution-phase checkpoints (aa-chosen instants):\n");
  std::printf("%-8s %-14s %-16s %-10s\n", "id", "initiated", "ckpt state",
              "vs avg");
  for (const auto& c : scheme.checkpoints()) {
    std::printf("%-8llu %-14s %-16s %-10.0f%%\n",
                static_cast<unsigned long long>(c.checkpoint_id),
                c.initiated.to_string().c_str(),
                format_bytes(c.total_declared).c_str(),
                (1.0 - static_cast<double>(c.total_declared) / avg_state) *
                    100.0);
  }
  std::printf("\nA positive \"vs avg\" means the controller checkpointed "
              "less state than a\nrandomly timed checkpoint would capture "
              "on average (paper: ~80%% for SignalGuru).\n");
  return 0;
}
