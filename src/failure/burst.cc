#include "failure/burst.h"

#include <algorithm>

namespace ms::failure {

const char* failure_kind_name(FailureEvent::Kind k) {
  switch (k) {
    case FailureEvent::Kind::kSingleNode: return "single-node";
    case FailureEvent::Kind::kRackBurst: return "rack-burst";
    case FailureEvent::Kind::kPowerBurst: return "power-burst";
  }
  return "?";
}

std::vector<FailureEvent> FailureTraceGenerator::generate(
    int cluster_nodes, int nodes_per_rack, SimTime horizon,
    bool spare_storage_node) {
  MS_CHECK(cluster_nodes > 0 && nodes_per_rack > 0);
  const double per_node_rate =
      model_.per_node_rate_per_second() * acceleration_;
  const double horizon_s = horizon.to_seconds();
  const net::NodeId storage = cluster_nodes - 1;

  std::vector<FailureEvent> events;

  // Independent failures: (1 - burst_fraction) of the total rate, Poisson
  // per node over the horizon.
  const double indep_mean =
      per_node_rate * (1.0 - model_.burst_fraction) * horizon_s;
  for (net::NodeId n = 0; n < cluster_nodes; ++n) {
    if (spare_storage_node && n == storage) continue;
    const std::int64_t k = rng_.poisson(indep_mean);
    for (std::int64_t i = 0; i < k; ++i) {
      FailureEvent ev;
      ev.kind = FailureEvent::Kind::kSingleNode;
      ev.at = SimTime::seconds(rng_.uniform(0.0, horizon_s));
      ev.nodes = {n};
      ev.repair_after =
          SimTime::seconds(rng_.uniform(60.0, 1800.0));  // reboot-scale
      events.push_back(std::move(ev));
    }
  }

  // Correlated bursts: burst_fraction of all node failures arrive in bursts.
  // Expected burst node-failures over the horizon:
  const double burst_node_failures = per_node_rate * model_.burst_fraction *
                                     horizon_s *
                                     static_cast<double>(cluster_nodes);
  const int num_racks = (cluster_nodes + nodes_per_rack - 1) / nodes_per_rack;
  double remaining = burst_node_failures;
  while (remaining > 0.0) {
    FailureEvent ev;
    ev.at = SimTime::seconds(rng_.uniform(0.0, horizon_s));
    ev.repair_after = SimTime::seconds(
        rng_.uniform(model_.repair_hours_min, model_.repair_hours_max) *
        3600.0);
    if (rng_.bernoulli(model_.rack_correlated_fraction)) {
      ev.kind = FailureEvent::Kind::kRackBurst;
      const int rack = static_cast<int>(rng_.uniform_u64(
          static_cast<std::uint64_t>(num_racks)));
      for (net::NodeId n = rack * nodes_per_rack;
           n < (rack + 1) * nodes_per_rack && n < cluster_nodes; ++n) {
        if (spare_storage_node && n == storage) continue;
        ev.nodes.push_back(n);
      }
    } else {
      ev.kind = FailureEvent::Kind::kPowerBurst;
      // A random slice of 5–20 % of the cluster.
      const double frac = rng_.uniform(0.05, 0.20);
      for (net::NodeId n = 0; n < cluster_nodes; ++n) {
        if (spare_storage_node && n == storage) continue;
        if (rng_.bernoulli(frac)) ev.nodes.push_back(n);
      }
    }
    if (ev.nodes.empty()) break;
    remaining -= static_cast<double>(ev.nodes.size());
    events.push_back(std::move(ev));
    // Stochastic stop so the expectation matches: if less than one burst's
    // worth remains, flip a biased coin.
    if (remaining < static_cast<double>(nodes_per_rack) &&
        !rng_.bernoulli(remaining / static_cast<double>(nodes_per_rack))) {
      break;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              return a.at < b.at;
            });
  return events;
}

void FailureInjector::schedule(const std::vector<FailureEvent>& trace) {
  auto& sim = cluster_->simulation();
  for (const auto& ev : trace) {
    sim.schedule_at(ev.at, [this, ev] {
      inject_now(ev.nodes);
      if (ev.repair_after > SimTime::zero()) {
        cluster_->simulation().schedule_after(ev.repair_after, [this, ev] {
          for (const net::NodeId n : ev.nodes) cluster_->revive_node(n);
        });
      }
    });
  }
}

void FailureInjector::inject_now(const std::vector<net::NodeId>& nodes) {
  for (const net::NodeId n : nodes) {
    if (!cluster_->node_alive(n)) continue;
    cluster_->fail_node(n);
    ++nodes_failed_;
  }
  if (app_ != nullptr) {
    for (int i = 0; i < app_->num_haus(); ++i) {
      core::Hau& hau = app_->hau(i);
      if (!hau.failed() && !cluster_->node_alive(hau.node())) {
        hau.on_node_failed();
      }
    }
  }
}

std::vector<net::NodeId> FailureInjector::fail_whole_application() {
  MS_CHECK(app_ != nullptr);
  const std::vector<net::NodeId> nodes = app_->nodes_in_use();
  inject_now(nodes);
  return nodes;
}

void FailureInjector::fail_rack(int rack) {
  inject_now(cluster_->topology().nodes_in_rack(rack));
}

}  // namespace ms::failure
