// Replays the paper's execution walkthroughs on the exact five-HAU diamond
// of Figs. 6 and 7:
//
//        1 -> 2 -> 3 \
//              \      5
//               -> 4 /
//
// Fig. 6 (MS-src): the token trickles 1->2->{3,4}->5; HAU 5 blocks the port
// whose token arrived first and keeps processing the other; the application
// checkpoint completes when HAU 5's checkpoint completes.
// Fig. 7/8 (MS-src+ap): the controller commands every HAU simultaneously;
// 1-hop tokens align each HAU; in-flight tuples between incoming and
// outgoing tokens are captured with the state.
#include <gtest/gtest.h>

#include "../testing/test_ops.h"
#include "ft/meteor_shower.h"

namespace ms::ft {
namespace {

using ms::testing::CounterSource;
using ms::testing::RecordingSink;
using ms::testing::RelayOperator;
using ms::testing::small_cluster;

core::QueryGraph diamond_graph() {
  core::QueryGraph g;
  const int s = g.add_source("hau1", [] {
    return std::make_unique<CounterSource>("hau1", SimTime::millis(10));
  });
  const int h2 = g.add_operator("hau2", [] {
    return std::make_unique<RelayOperator>("hau2");
  });
  const int h3 = g.add_operator("hau3", [] {
    return std::make_unique<RelayOperator>("hau3");
  });
  const int h4 = g.add_operator("hau4", [] {
    return std::make_unique<RelayOperator>("hau4");
  });
  const int h5 = g.add_sink("hau5", [] {
    return std::make_unique<RecordingSink>("hau5");
  });
  g.connect(s, h2);
  g.connect(h2, h3);
  g.connect(h2, h4);
  g.connect(h3, h5);
  g.connect(h4, h5);
  return g;
}

class TokenWalkthroughTest : public ::testing::Test {
 protected:
  void build(MsVariant variant) {
    cluster_ = std::make_unique<core::Cluster>(&sim_, small_cluster(12));
    app_ = std::make_unique<core::Application>(cluster_.get(), diamond_graph());
    app_->deploy();
    FtParams p;
    p.periodic = false;
    scheme_ = std::make_unique<MsScheme>(app_.get(), p, variant);
    scheme_->attach();
    app_->start();
    scheme_->start();
  }

  sim::Simulation sim_;
  std::unique_ptr<core::Cluster> cluster_;
  std::unique_ptr<core::Application> app_;
  std::unique_ptr<MsScheme> scheme_;
};

TEST_F(TokenWalkthroughTest, MsSrcTokenTricklesThroughTheDiamond) {
  build(MsVariant::kSrc);
  sim_.run_until(SimTime::seconds(1));
  // Make HAU 4 slower than HAU 3, as in the figure ("Because HAU 4 runs
  // more slowly than HAU 3, token T2 has not been processed yet").
  app_->hau(3).op().costs().base = SimTime::millis(8);

  scheme_->trigger_checkpoint();
  sim_.run_until(SimTime::seconds(10));
  ASSERT_EQ(scheme_->checkpoints().size(), 1u);
  const auto& stats = scheme_->checkpoints().front();
  EXPECT_EQ(stats.haus_reported, 5);
  // Every HAU's image landed in shared storage.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(cluster_->shared_storage().contains(
        scheme_->checkpoint_key(i, stats.checkpoint_id)));
  }
  // Processing continued after the checkpoint; no tuple was missed or
  // processed twice at the sink.
  sim_.run_until(SimTime::seconds(20));
  // HAU 2 broadcasts to both branches, so the sink sees each value exactly
  // twice (once via HAU 3 and once via HAU 4) — no loss, no extra copies.
  // The slow branch lags, so only judge values whose slow copy had time to
  // arrive (drop the in-flight tail).
  auto& sink = static_cast<RecordingSink&>(app_->hau(4).op());
  std::vector<std::int64_t> sorted = sink.values;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_GT(sorted.size(), 1000u);
  std::int64_t complete_prefix = -1;
  for (std::size_t i = 0; i + 1 < sorted.size(); i += 2) {
    if (sorted[i] != sorted[i + 1]) break;  // first value missing its pair
    ASSERT_EQ(sorted[i], static_cast<std::int64_t>(i / 2)) << "value lost";
    complete_prefix = sorted[i];
  }
  EXPECT_GT(complete_prefix, 400);
}

TEST_F(TokenWalkthroughTest, MsSrcBlocksFirstTokenPortWhileProcessingOther) {
  build(MsVariant::kSrc);
  sim_.run_until(SimTime::seconds(1));
  // Slow HAU 4 dramatically and let a backlog build on its input, so HAU 5
  // receives HAU 3's token long before HAU 4's (Fig. 6 t=4: "HAU 5 then
  // stops processing tuples from HAU 3... can still process tuples from
  // HAU 4").
  app_->hau(3).op().costs().base = SimTime::millis(50);
  sim_.run_until(SimTime::seconds(3));
  scheme_->trigger_checkpoint();

  // While the checkpoint is mid-flight, port 0 (from HAU 3) should become
  // blocked at HAU 5 at some instant while port 1 is not.
  bool observed_asymmetric_block = false;
  for (int step = 0; step < 200 && !observed_asymmetric_block; ++step) {
    sim_.run_until(sim_.now() + SimTime::millis(20));
    core::Hau& h5 = app_->hau(4);
    if (h5.port_blocked(0) && !h5.port_blocked(1)) {
      observed_asymmetric_block = true;
    }
  }
  EXPECT_TRUE(observed_asymmetric_block);
  sim_.run_until(SimTime::seconds(30));
  EXPECT_EQ(scheme_->checkpoints().size(), 1u);
}

TEST_F(TokenWalkthroughTest, MsSrcApAlignsAllHausInParallel) {
  build(MsVariant::kSrcAp);
  sim_.run_until(SimTime::seconds(1));
  scheme_->trigger_checkpoint();
  sim_.run_until(SimTime::seconds(10));
  ASSERT_EQ(scheme_->checkpoints().size(), 1u);
  const auto& stats = scheme_->checkpoints().front();
  EXPECT_EQ(stats.haus_reported, 5);
  // Parallel alignment: the whole application checkpoint completes far
  // faster than five sequential individual checkpoints would.
  EXPECT_LT(stats.total(), SimTime::seconds(5));
  // The slowest HAU's token collection is part of the breakdown.
  EXPECT_GE(stats.slowest.token_collection(), SimTime::zero());
}

TEST_F(TokenWalkthroughTest, MsSrcApCapturesInFlightTuples) {
  build(MsVariant::kSrcAp);
  sim_.run_until(SimTime::seconds(1));
  // Slow the sink's processing of port 0 so tuples sit between HAU 3's
  // outgoing token and HAU 5's alignment.
  app_->hau(4).op().costs().base = SimTime::millis(5);
  scheme_->trigger_checkpoint();
  sim_.run_until(SimTime::seconds(10));
  ASSERT_EQ(scheme_->checkpoints().size(), 1u);
  const std::uint64_t id = scheme_->checkpoints().front().checkpoint_id;
  // Every non-source HAU's image is in shared storage; the simulator keeps
  // the structured image (with any captured in-flight tuples) by handle.
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(
        cluster_->shared_storage().contains(scheme_->checkpoint_key(i, id)));
  }
  // Kill and recover; the captured in-flight tuples must be resent —
  // verified end-to-end by exactly-once delivery.
  for (const net::NodeId n : app_->nodes_in_use()) cluster_->fail_node(n);
  for (int i = 0; i < app_->num_haus(); ++i) app_->hau(i).on_node_failed();
  bool done = false;
  scheme_->recover_application({5, 6, 7, 8, 9}, [&](RecoveryStats) {
    done = true;
  });
  sim_.run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  sim_.run_until(SimTime::seconds(90));
  // Each value arrives exactly twice (two branches); verify pairs with at
  // most a small undispatched-batch loss window.
  auto& sink = static_cast<RecordingSink&>(app_->hau(4).op());
  std::vector<std::int64_t> sorted = sink.values;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_GT(sorted.size(), 500u);
  std::int64_t missing = 0;
  for (std::size_t i = 0; i + 1 < sorted.size();) {
    if (sorted[i] == sorted[i + 1]) {
      ASSERT_TRUE(i + 2 >= sorted.size() || sorted[i + 2] != sorted[i])
          << "value " << sorted[i] << " seen more than twice";
      i += 2;
    } else {
      ++missing;  // one branch copy lost — must stay within the batch window
      ++i;
    }
  }
  EXPECT_LE(missing, 20);
}

TEST_F(TokenWalkthroughTest, SinkWithTwoUpstreamsNeedsBothTokens) {
  build(MsVariant::kSrcAp);
  sim_.run_until(SimTime::seconds(1));
  // Freeze HAU 4 entirely: its token to HAU 5 never flows, so the
  // application checkpoint cannot complete (HAU 5 never aligns).
  app_->hau(3).pause();
  scheme_->trigger_checkpoint();
  sim_.run_until(SimTime::seconds(8));
  EXPECT_TRUE(scheme_->checkpoints().empty());
  // Unfreeze: alignment completes.
  app_->hau(3).resume();
  sim_.run_until(SimTime::seconds(20));
  EXPECT_EQ(scheme_->checkpoints().size(), 1u);
}

}  // namespace
}  // namespace ms::ft
