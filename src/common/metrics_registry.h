// Process-wide registry of named runtime metrics.
//
// Complements the post-run stat records of ft/stats.h: where those are
// immutable per-figure reports collected after a run ends, the registry is
// the live surface — counters, gauges and latency histograms registered by
// name and updated as the protocol executes, so a controller (or a test, or
// the mssim --metrics dump) can query per-HAU checkpoint phase breakdowns
// and queue depths mid-run. Khaos/Chiron-style adaptive checkpoint
// controllers are consumers of exactly this interface.
//
// Counters and gauges are lock-free atomics (the RtEngine updates them from
// worker threads); histograms take a narrow mutex per recording. Metric
// objects live for the registry's lifetime, so call sites look a metric up
// once and keep the pointer on their hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/units.h"

namespace ms {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, in-progress epochs,
/// current state size).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // Relaxed CAS loop: gauges are low-rate and never contended enough for
    // this to matter; atomic<double> has no fetch_add until C++26.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe wrapper over LatencyHistogram.
class HistogramMetric {
 public:
  void record(SimTime v) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.record(v);
  }
  LatencyHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.reset();
  }

 private:
  mutable std::mutex mu_;
  LatencyHistogram histogram_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance most emitters default to.
  static MetricsRegistry& global();

  /// Look up or create. Returned pointers stay valid for the registry's
  /// lifetime (reset() zeroes values but never deletes metrics).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name);

  /// Snapshot views for exporters and tests.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms() const;

  /// Zero every metric (measurement-window boundaries).
  void reset();

  /// Flat JSON dump:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean_ns,
  /// p50_ns,p99_ns,min_ns,max_ns}}}.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace ms
