#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace ms {

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::bucket_for(std::int64_t ns) {
  if (ns < 1000) return 0;  // sub-microsecond lumps into bucket 0
  // Geometric buckets: 16 per octave above 1us.
  const double octaves = std::log2(static_cast<double>(ns) / 1000.0);
  const int b = 1 + static_cast<int>(octaves * 16.0);
  return std::min(b, kBuckets - 1);
}

std::int64_t LatencyHistogram::bucket_upper_ns(int b) {
  if (b == 0) return 1000;
  return static_cast<std::int64_t>(1000.0 * std::exp2(static_cast<double>(b) / 16.0));
}

void LatencyHistogram::record(SimTime latency) {
  const std::int64_t ns = std::max<std::int64_t>(latency.ns(), 0);
  ++buckets_[static_cast<std::size_t>(bucket_for(ns))];
  ++count_;
  sum_ns_ += ns;
  min_ = std::min(min_, latency);
  max_ = std::max(max_, latency);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = SimTime::max();
  max_ = SimTime::zero();
}

SimTime LatencyHistogram::mean() const {
  if (count_ == 0) return SimTime::zero();
  return SimTime::nanos(sum_ns_ / count_);
}

SimTime LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return SimTime::zero();
  MS_CHECK(p >= 0.0 && p <= 100.0);
  const auto target = static_cast<std::int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target) return SimTime::nanos(bucket_upper_ns(i));
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%lld mean=%s p50=%s p99=%s max=%s",
                static_cast<long long>(count_), mean().to_string().c_str(),
                percentile(50).to_string().c_str(),
                percentile(99).to_string().c_str(), max_.to_string().c_str());
  return buf;
}

double TimeSeries::min_value() const {
  MS_CHECK(!points_.empty());
  double m = points_.front().value;
  for (const auto& p : points_) m = std::min(m, p.value);
  return m;
}

double TimeSeries::max_value() const {
  MS_CHECK(!points_.empty());
  double m = points_.front().value;
  for (const auto& p : points_) m = std::max(m, p.value);
  return m;
}

double TimeSeries::mean_value() const {
  MS_CHECK(!points_.empty());
  if (points_.size() == 1) return points_.front().value;
  // Trapezoidal time-weighted mean: appropriate for a sampled signal.
  double area = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dt = (points_[i].t - points_[i - 1].t).to_seconds();
    area += 0.5 * (points_[i].value + points_[i - 1].value) * dt;
  }
  const double span = (points_.back().t - points_.front().t).to_seconds();
  if (span <= 0.0) return points_.front().value;
  return area / span;
}

std::vector<TimeSeries::Point> TimeSeries::local_minima(std::size_t window) const {
  std::vector<Point> out;
  if (points_.size() < 2 * window + 1) return out;
  for (std::size_t i = window; i + window < points_.size(); ++i) {
    bool is_min = true;
    for (std::size_t j = i - window; j <= i + window && is_min; ++j) {
      if (j != i && points_[j].value < points_[i].value) is_min = false;
    }
    if (is_min) {
      // Collapse plateaus: skip if the previous reported minimum has the
      // same value and is adjacent in the window.
      if (!out.empty() && out.back().value == points_[i].value &&
          (points_[i].t - out.back().t) < (points_[i].t - points_[i - window].t) * std::int64_t{2}) {
        continue;
      }
      out.push_back(points_[i]);
    }
  }
  return out;
}

TimeSeries TimeSeries::downsample(std::size_t n) const {
  TimeSeries out;
  if (points_.size() <= n || n == 0) {
    out.points_ = points_;
    return out;
  }
  const double stride = static_cast<double>(points_.size()) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.points_.push_back(points_[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
  }
  return out;
}

}  // namespace ms
