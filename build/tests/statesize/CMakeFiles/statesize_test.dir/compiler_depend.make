# Empty compiler generated dependencies file for statesize_test.
# This may be replaced when dependencies are built.
