#include "storage/disk.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace ms::storage {

Disk::Disk(sim::Simulation* sim, const DiskConfig& config)
    : sim_(sim), config_(config) {
  MS_CHECK(sim != nullptr);
  MS_CHECK(config.write_bandwidth > 0 && config.read_bandwidth > 0);
  MS_CHECK(config.chunk_size > 0);
}

void Disk::write(Bytes size, std::function<void()> done) {
  bytes_written_ += size;
  enqueue(size, config_.write_bandwidth, std::move(done));
}

void Disk::read(Bytes size, std::function<void()> done) {
  bytes_read_ += size;
  enqueue(size, config_.read_bandwidth, std::move(done));
}

void Disk::enqueue(Bytes size, double bandwidth, std::function<void()> done) {
  MS_CHECK(size >= 0);
  queue_.push_back(Request{size, bandwidth, false, std::move(done)});
  pump();
}

void Disk::pump() {
  if (serving_ || queue_.empty()) return;
  serving_ = true;
  // Serve one chunk of the front request in place (it stays visible to
  // busy_until()); rotate or complete it when the chunk finishes.
  Request& req = queue_.front();
  SimTime service = SimTime::zero();
  if (!req.overhead_paid) {
    service += config_.per_request_overhead;
    req.overhead_paid = true;
  }
  const Bytes chunk = std::min(req.remaining, config_.chunk_size);
  service += transfer_time(chunk, req.bandwidth);
  req.remaining -= chunk;

  const std::uint64_t gen = generation_;
  sim_->schedule_after(service, [this, gen] {
    if (gen != generation_) return;  // reset() mid-service
    serving_ = false;
    Request finished = std::move(queue_.front());
    queue_.pop_front();
    if (finished.remaining > 0) {
      queue_.push_back(std::move(finished));  // round-robin rotation
      pump();
      return;
    }
    if (finished.done) finished.done();
    pump();
  });
}

void Disk::reset() {
  ++generation_;
  queue_.clear();
  serving_ = false;
}

SimTime Disk::busy_until() const {
  // The in-flight chunk's remaining bytes were already deducted from the
  // front request, so this under-counts by less than one chunk and
  // over-counts the elapsed part of the current chunk — within one chunk
  // service time either way.
  SimTime remaining = SimTime::zero();
  for (const auto& r : queue_) {
    if (!r.overhead_paid) remaining += config_.per_request_overhead;
    remaining += transfer_time(r.remaining, r.bandwidth);
  }
  if (serving_) {
    remaining += transfer_time(config_.chunk_size, config_.write_bandwidth);
  }
  return sim_->now() + remaining;
}

}  // namespace ms::storage
