// Fixed-size thread pool used by the real-threads engine (src/rt) for
// asynchronous checkpoint serialization. Follows C++ Core Guidelines CP.*:
// tasks not threads, RAII join, condition waits with predicates.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ms {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns immediately. Tasks run FIFO across workers.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;   // signalled on new task / shutdown
  std::condition_variable cv_idle_;   // signalled when work drains
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ms
