#include "core/query_graph.h"

#include <deque>

namespace ms::core {

int QueryGraph::add_operator(std::string name, OperatorFactory factory,
                             bool is_source, bool is_sink) {
  MS_CHECK(factory != nullptr);
  const int id = num_operators();
  ops_.push_back(OperatorSpec{std::move(name), std::move(factory), is_source,
                              is_sink});
  out_ports_.push_back(0);
  in_ports_.push_back(0);
  return id;
}

int QueryGraph::connect(int from, int to) {
  MS_CHECK(from >= 0 && from < num_operators());
  MS_CHECK(to >= 0 && to < num_operators());
  MS_CHECK_MSG(from != to, "self-loop");
  const int id = num_edges();
  edges_.push_back(Edge{from, to, out_ports_[static_cast<std::size_t>(from)]++,
                        in_ports_[static_cast<std::size_t>(to)]++});
  return id;
}

std::vector<int> QueryGraph::sources() const {
  std::vector<int> out;
  for (int i = 0; i < num_operators(); ++i) {
    if (ops_[static_cast<std::size_t>(i)].is_source) out.push_back(i);
  }
  return out;
}

std::vector<int> QueryGraph::sinks() const {
  std::vector<int> out;
  for (int i = 0; i < num_operators(); ++i) {
    if (ops_[static_cast<std::size_t>(i)].is_sink) out.push_back(i);
  }
  return out;
}

Status QueryGraph::validate() const {
  for (int i = 0; i < num_operators(); ++i) {
    const auto& op = ops_[static_cast<std::size_t>(i)];
    const int in = in_ports_[static_cast<std::size_t>(i)];
    const int out = out_ports_[static_cast<std::size_t>(i)];
    if (op.is_source && in != 0) {
      return Status::invalid_argument("source '" + op.name + "' has inputs");
    }
    if (!op.is_source && in == 0) {
      return Status::invalid_argument("operator '" + op.name +
                                      "' has no inputs and is not a source");
    }
    if (!op.is_sink && out == 0) {
      return Status::invalid_argument("operator '" + op.name +
                                      "' has no outputs and is not a sink");
    }
  }
  if (static_cast<int>(topological_order().size()) != num_operators()) {
    return Status::invalid_argument("query network contains a cycle");
  }
  return Status::ok();
}

std::vector<int> QueryGraph::topological_order() const {
  std::vector<int> indegree(static_cast<std::size_t>(num_operators()), 0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_operators()));
  for (const auto& e : edges_) {
    adj[static_cast<std::size_t>(e.from)].push_back(e.to);
    ++indegree[static_cast<std::size_t>(e.to)];
  }
  std::deque<int> ready;
  for (int i = 0; i < num_operators(); ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_operators()));
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const int w : adj[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
    }
  }
  return order;
}

}  // namespace ms::core
