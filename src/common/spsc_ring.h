// Single-producer single-consumer lock-free ring buffer.
//
// The RtEngine's per-edge transport: exactly one producer (the upstream
// operator — every emit path holds that operator's op_mu, which also makes
// producer *handoff* between the worker and timer threads well-defined) and
// exactly one consumer (the downstream worker thread) per ring.
//
// Memory ordering (the classic SPSC protocol):
//  - the producer writes the slot, then publishes with a release store of
//    tail_; the consumer's acquire load of tail_ therefore observes a fully
//    constructed value;
//  - the consumer moves the value out, then retires the slot with a release
//    store of head_; the producer's acquire load of head_ therefore never
//    reuses a slot whose value is still being read.
//
// Each side keeps a *cached* copy of the opposite index (head_cache_ /
// tail_cache_) and only re-reads the shared atomic when the cache says the
// ring looks full/empty — in steady state the hot path touches no shared
// cache line it does not own. The caches are relaxed atomics rather than
// plain fields: the producer role can be handed between threads (worker vs
// timer, serialized by an external mutex), and a stale cache is always
// conservative because head_/tail_ are monotonic.
//
// All four counters live on their own cache lines so pushes and pops never
// false-share.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ms {

template <typename T>
class SpscRing {
 public:
  /// Rounds `min_slots` up to a power of two. Capacity is slots(): the ring
  /// holds at most slots() entries.
  explicit SpscRing(std::size_t min_slots) {
    std::size_t n = 1;
    while (n < min_slots) n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (value untouched).
  bool try_push(T&& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    std::uint64_t h = head_cache_.load(std::memory_order_relaxed);
    if (t - h > mask_) {
      h = head_.load(std::memory_order_acquire);
      head_cache_.store(h, std::memory_order_relaxed);
      if (t - h > mask_) return false;
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::uint64_t t = tail_cache_.load(std::memory_order_relaxed);
    if (h == t) {
      t = tail_.load(std::memory_order_acquire);
      tail_cache_.store(t, std::memory_order_relaxed);
      if (h == t) return false;
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, zero-copy variant: borrow the front entry in place
  /// (nullptr when empty). The slot stays owned by the ring — and invisible
  /// to the producer — until pop_front() retires it, so the consumer can
  /// process large entries without moving them out. Pair every front() that
  /// returned non-null with exactly one pop_front().
  T* front() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::uint64_t t = tail_cache_.load(std::memory_order_relaxed);
    if (h == t) {
      t = tail_.load(std::memory_order_acquire);
      tail_cache_.store(t, std::memory_order_relaxed);
      if (h == t) return nullptr;
    }
    return &slots_[h & mask_];
  }

  /// Retire the entry last returned by front(). Destroys any value the
  /// consumer left behind (a drained batch is normally moved out of the
  /// slot first, e.g. into a carrier) and releases the slot to the
  /// producer.
  void pop_front() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & mask_] = T();
    head_.store(h + 1, std::memory_order_release);
  }

  /// Observer view (any thread): conservative — may lag either side.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t size_approx() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  std::size_t slots() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::uint64_t mask_ = 0;
  /// Next slot to pop; written by the consumer, read by the producer.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  /// Producer's last observed head_ (producer-owned).
  alignas(64) std::atomic<std::uint64_t> head_cache_{0};
  /// Next slot to fill; written by the producer, read by the consumer.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  /// Consumer's last observed tail_ (consumer-owned).
  alignas(64) std::atomic<std::uint64_t> tail_cache_{0};
};

}  // namespace ms
