// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulation (data generators, failure
// injection, placement) takes an explicit Rng seeded from the experiment
// seed, so each benchmark run is exactly reproducible. The generator is
// xoshiro256** (public domain, Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <cmath>

#include "common/status.h"

namespace ms {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680cafe1234ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Derive an independent child stream; `stream_id` distinguishes siblings.
  Rng fork(std::uint64_t stream_id) const {
    std::uint64_t sm = s_[0] ^ (s_[3] + 0x632be59bd9b4e019ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface for <random> interop.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    MS_CHECK(n > 0);
    // Lemire's rejection method: unbiased and fast.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MS_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with given mean (> 0).
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  std::int64_t poisson(double mean) {
    MS_CHECK(mean >= 0.0);
    if (mean == 0.0) return 0;
    if (mean > 64.0) {
      const double v = normal(mean, std::sqrt(mean));
      return v < 0 ? 0 : static_cast<std::int64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::int64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace ms
