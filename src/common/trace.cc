#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace ms {

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

void TraceRecorder::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool TraceRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void TraceRecorder::begin(
    SimTime ts, int pid, int tid, std::string name, const char* cat,
    std::uint64_t id, std::vector<std::pair<std::string, std::int64_t>> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  TraceEvent e;
  e.ts_ns = ts.ns();
  e.ph = 'B';
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.cat = cat;
  e.id = id;
  e.args = std::move(args);
  open_.push_back(OpenSpan{pid, tid, std::move(name)});
  events_.push_back(std::move(e));
}

void TraceRecorder::end_locked(SimTime ts, int pid, int tid) {
  // Innermost open span on this track (LIFO).
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->pid != pid || it->tid != tid) continue;
    TraceEvent e;
    e.ts_ns = ts.ns();
    e.ph = 'E';
    e.pid = pid;
    e.tid = tid;
    e.name = std::move(it->name);
    open_.erase(std::next(it).base());
    events_.push_back(std::move(e));
    return;
  }
}

void TraceRecorder::end(SimTime ts, int pid, int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  end_locked(ts, pid, tid);
}

void TraceRecorder::end_all(SimTime ts, int pid, int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  while (std::any_of(open_.begin(), open_.end(), [&](const OpenSpan& s) {
    return s.pid == pid && s.tid == tid;
  })) {
    end_locked(ts, pid, tid);
  }
}

void TraceRecorder::end_everything(SimTime ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  while (!open_.empty()) {
    end_locked(ts, open_.back().pid, open_.back().tid);
  }
}

void TraceRecorder::instant(
    SimTime ts, int pid, int tid, std::string name, const char* cat,
    std::uint64_t id, std::vector<std::pair<std::string, std::int64_t>> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  TraceEvent e;
  e.ts_ns = ts.ns();
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.name = std::move(name);
  e.cat = cat;
  e.id = id;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::complete(
    SimTime ts, SimTime dur, int pid, int tid, std::string name,
    const char* cat, std::uint64_t id,
    std::vector<std::pair<std::string, std::int64_t>> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  TraceEvent e;
  e.ts_ns = ts.ns();
  e.dur_ns = std::max<std::int64_t>(dur.ns(), 0);
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.name = std::move(name);
  e.cat = cat;
  e.id = id;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::set_track_name(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_.emplace_back(std::make_pair(pid, tid), std::move(name));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<std::string> TraceRecorder::open_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& s : open_) out.push_back(s.name);
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_.clear();
}

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Nanoseconds as fractional microseconds without float rounding.
void write_ts_us(std::ostream& out, std::int64_t ns) {
  const bool neg = ns < 0;
  if (neg) {
    out << '-';
    ns = -ns;
  }
  out << ns / 1000;
  const std::int64_t frac = ns % 1000;
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%03lld", static_cast<long long>(frac));
    out << buf;
  }
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.first
        << ",\"tid\":" << track.second << ",\"args\":{\"name\":";
    write_escaped(out, name);
    out << "}}";
  }
  for (const auto& e : events_) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":";
    write_escaped(out, e.name);
    out << ",\"cat\":";
    write_escaped(out, e.cat.empty() ? std::string("misc") : e.cat);
    out << ",\"ph\":\"" << e.ph << "\",\"ts\":";
    write_ts_us(out, e.ts_ns);
    if (e.ph == 'X') {
      out << ",\"dur\":";
      write_ts_us(out, e.dur_ns);
    }
    out << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.id != 0 || !e.args.empty()) {
      out << ",\"args\":{";
      bool afirst = true;
      if (e.id != 0) {
        out << "\"id\":" << e.id;
        afirst = false;
      }
      for (const auto& [k, v] : e.args) {
        if (!afirst) out << ",";
        afirst = false;
        write_escaped(out, k);
        out << ":" << v;
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}\n";
}

std::string TraceRecorder::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (only what the Chrome trace format needs)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  std::string error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str);
      case 't':
      case 'f': return parse_bool(out);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string_view(lit).size();
    if (text_.substr(pos_, n) != lit) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parse_bool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      out->boolean = true;
      return parse_literal("true");
    }
    out->boolean = false;
    return parse_literal("false");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return true;
  }

  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // Keep it simple: decode only the Latin-1 subset our writer emits.
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!parse_value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::int64_t us_to_ns(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1000.0));
}

}  // namespace

Status parse_chrome_trace(std::string_view json, std::vector<TraceEvent>* out) {
  out->clear();
  JsonParser parser(json);
  JsonValue root;
  if (!parser.parse(&root)) {
    return Status::invalid_argument("trace JSON parse error: " + parser.error());
  }
  const JsonValue* events = nullptr;
  if (root.kind == JsonValue::Kind::kObject) {
    events = root.find("traceEvents");
  } else if (root.kind == JsonValue::Kind::kArray) {
    events = &root;  // the format also allows a bare array
  }
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Status::invalid_argument("trace JSON has no traceEvents array");
  }
  for (const auto& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) {
      return Status::invalid_argument("traceEvents entry is not an object");
    }
    TraceEvent e;
    if (const auto* v = ev.find("name");
        v != nullptr && v->kind == JsonValue::Kind::kString) {
      e.name = v->str;
    }
    if (const auto* v = ev.find("cat");
        v != nullptr && v->kind == JsonValue::Kind::kString) {
      e.cat = v->str;
    }
    if (const auto* v = ev.find("ph");
        v != nullptr && v->kind == JsonValue::Kind::kString && !v->str.empty()) {
      e.ph = v->str[0];
    } else {
      return Status::invalid_argument("trace event missing ph");
    }
    if (const auto* v = ev.find("ts");
        v != nullptr && v->kind == JsonValue::Kind::kNumber) {
      e.ts_ns = us_to_ns(v->number);
    } else if (e.ph != 'M') {
      return Status::invalid_argument("trace event missing ts");
    }
    if (const auto* v = ev.find("dur");
        v != nullptr && v->kind == JsonValue::Kind::kNumber) {
      e.dur_ns = us_to_ns(v->number);
    }
    if (const auto* v = ev.find("pid");
        v != nullptr && v->kind == JsonValue::Kind::kNumber) {
      e.pid = static_cast<int>(v->number);
    }
    if (const auto* v = ev.find("tid");
        v != nullptr && v->kind == JsonValue::Kind::kNumber) {
      e.tid = static_cast<int>(v->number);
    }
    if (const auto* args = ev.find("args");
        args != nullptr && args->kind == JsonValue::Kind::kObject) {
      for (const auto& [k, v] : args->object) {
        if (v.kind != JsonValue::Kind::kNumber) continue;  // e.g. track names
        if (k == "id") {
          e.id = static_cast<std::uint64_t>(v.number);
        } else {
          e.args.emplace_back(k, static_cast<std::int64_t>(v.number));
        }
      }
    }
    out->push_back(std::move(e));
  }
  return Status::ok();
}

std::vector<TraceSpan> pair_spans(const std::vector<TraceEvent>& events,
                                  std::vector<std::string>* problems) {
  std::vector<TraceSpan> out;
  struct Open {
    TraceEvent begin;
  };
  std::map<std::pair<int, int>, std::vector<Open>> stacks;
  auto note = [problems](std::string p) {
    if (problems != nullptr) problems->push_back(std::move(p));
  };
  for (const auto& e : events) {
    const auto track = std::make_pair(e.pid, e.tid);
    switch (e.ph) {
      case 'B': stacks[track].push_back(Open{e}); break;
      case 'E': {
        auto& stack = stacks[track];
        if (stack.empty()) {
          note("unmatched E event '" + e.name + "' on pid " +
               std::to_string(e.pid) + " tid " + std::to_string(e.tid));
          break;
        }
        const TraceEvent b = std::move(stack.back().begin);
        stack.pop_back();
        if (!e.name.empty() && e.name != b.name) {
          note("mismatched span nesting: B '" + b.name + "' closed by E '" +
               e.name + "'");
        }
        TraceSpan s;
        s.ts_ns = b.ts_ns;
        s.dur_ns = e.ts_ns - b.ts_ns;
        s.pid = b.pid;
        s.tid = b.tid;
        s.name = b.name;
        s.cat = b.cat;
        s.id = b.id;
        out.push_back(std::move(s));
        break;
      }
      case 'X': {
        TraceSpan s;
        s.ts_ns = e.ts_ns;
        s.dur_ns = e.dur_ns;
        s.pid = e.pid;
        s.tid = e.tid;
        s.name = e.name;
        s.cat = e.cat;
        s.id = e.id;
        out.push_back(std::move(s));
        break;
      }
      default: break;  // instants and metadata carry no duration
    }
  }
  for (const auto& [track, stack] : stacks) {
    for (const auto& open : stack) {
      note("unterminated span '" + open.begin.name + "' on pid " +
           std::to_string(track.first) + " tid " + std::to_string(track.second));
    }
  }
  return out;
}

std::vector<std::string> check_trace(const std::vector<TraceEvent>& events) {
  std::vector<std::string> problems;
  std::map<std::pair<int, int>, std::int64_t> last_ts;
  for (const auto& e : events) {
    if (e.ph == 'M') continue;
    if (e.ts_ns < 0) {
      problems.push_back("negative timestamp on event '" + e.name + "'");
    }
    if (e.dur_ns < 0) {
      problems.push_back("negative duration on event '" + e.name + "'");
    }
    // 'X' events are appended at completion but stamped with their start
    // time, so overlapping operations legitimately record out of order.
    if (e.ph == 'X') continue;
    const auto track = std::make_pair(e.pid, e.tid);
    const auto it = last_ts.find(track);
    if (it != last_ts.end() && e.ts_ns < it->second) {
      problems.push_back("timestamps regress on pid " + std::to_string(e.pid) +
                         " tid " + std::to_string(e.tid) + " at event '" +
                         e.name + "'");
    }
    last_ts[track] = e.ts_ns;
  }
  pair_spans(events, &problems);  // B/E balance and nesting
  return problems;
}

}  // namespace ms
