// Shared heartbeat failure detector used by both runtimes.
//
// The paper's controller declares an HAU failed when its pings go
// unanswered; Su & Zhou (2015) stress that recovery quality hinges on
// detection that is both *fast* and *accurate*. This detector separates the
// two concerns: a missed heartbeat only moves a unit to the *suspect* state,
// and only `suspicion_threshold` consecutive misses produce a failure
// verdict. A late heartbeat before the threshold exonerates the suspect —
// counted in `ft.detector.false_positive` — so a slow-but-alive node under
// network delay never triggers a (costly) whole-application rollback.
//
// The clock is pluggable: the simulator injects sim-time, the real-threads
// supervisor injects a monotonic wall clock, and the escalation logic is
// shared verbatim. All entry points are mutex-guarded so the rt engine's
// timer thread can publish heartbeats while the supervisor thread scans.
//
// Units are opaque ints: node ids on the sim side, operator ids on the rt
// side.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "ft/probe.h"

namespace ms {
class Counter;
class HistogramMetric;
}  // namespace ms

namespace ms::ft {

class FailureDetector {
 public:
  enum class UnitState { kAlive, kSuspect, kFailed };

  struct Params {
    /// Consecutive misses before a failure verdict.
    int suspicion_threshold = 3;
    /// Used by scan(): a unit silent for longer than this accrues one miss
    /// per scan call. Zero disables timeout-based scanning (the caller then
    /// reports misses explicitly, e.g. per unanswered ping).
    SimTime timeout = SimTime::zero();
  };

  using Clock = std::function<SimTime()>;

  FailureDetector(Params params, Clock clock);

  /// Optional: suspicion / exoneration / verdict events are announced on
  /// this probe (point, unit, cumulative miss count).
  void set_probe(FtProbe probe);

  /// Start tracking a unit; its heartbeat clock starts now. Tracking an
  /// already-tracked unit is a no-op (its state is preserved).
  void track(int unit);
  void forget(int unit);

  /// A liveness signal from `unit`. Clears accumulated suspicion; returns
  /// true iff this exonerated a suspect (a detector false positive).
  /// Heartbeats from units already under a failure verdict are ignored —
  /// recovery calls reset() when the unit is actually back.
  bool heartbeat(int unit);

  /// One missed heartbeat (an unanswered ping). Escalates kAlive → kSuspect
  /// on the first miss and kSuspect → kFailed at the suspicion threshold.
  /// Returns true iff this miss produced the failure verdict.
  bool miss(int unit);

  /// Timeout-based escalation: every tracked, not-yet-failed unit whose last
  /// heartbeat is older than `params.timeout` accrues one miss. Returns the
  /// units that crossed into kFailed on this scan. No-op if timeout is zero.
  std::vector<int> scan();

  /// Post-recovery: the unit is alive again as of now, all suspicion
  /// cleared.
  void reset(int unit);
  void reset_all();

  UnitState state(int unit) const;
  SimTime last_heartbeat(int unit) const;
  int suspicion(int unit) const;

 private:
  struct Entry {
    SimTime last_heartbeat = SimTime::zero();
    int misses = 0;
    UnitState state = UnitState::kAlive;
  };
  struct Event {
    FtPoint point;
    int unit;
    std::uint64_t id;
  };

  // Escalation core; mu_ held. Appends probe events to `out`.
  bool miss_locked(int unit, Entry& e, std::vector<Event>& out);
  void emit(const std::vector<Event>& events);

  const Params params_;
  const Clock clock_;
  FtProbe probe_;

  mutable std::mutex mu_;
  std::map<int, Entry> units_;

  Counter* m_heartbeats_;
  Counter* m_suspicions_;
  Counter* m_false_positive_;
  Counter* m_verdicts_;
  HistogramMetric* m_detection_latency_;
};

}  // namespace ms::ft
