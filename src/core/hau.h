// High Availability Unit: the smallest unit of work that is checkpointed and
// recovered independently (paper §II-A). An HAU hosts one operator (the
// paper's evaluation maps one operator per HAU), its input buffers, and the
// fault-tolerance attachment supplied by the active scheme.
//
// Execution model: the HAU is single-threaded like an SPE thread. It picks
// the next processable input item round-robin across in-ports, charges the
// operator's CPU cost on the node's CpuServer, then runs the operator logic
// and ships emissions downstream. Tokens that reach the head of an in-port
// are handed to the fault-tolerance attachment, which decides whether the
// port blocks (checkpoint alignment) and when the token is consumed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/operator.h"
#include "core/tuple.h"
#include "net/topology.h"
#include "storage/stores.h"

namespace ms::core {

class Application;
class Hau;

/// Per-HAU fault-tolerance attachment. The active scheme installs one of
/// these on every HAU; the default (no fault tolerance) passes everything
/// through.
class HauFt {
 public:
  virtual ~HauFt() = default;

  virtual void on_start(Hau& hau) { (void)hau; }

  /// A token reached the head of `in_port`. The implementation must either
  /// consume it (Hau::pop_token) or leave it and block the port
  /// (Hau::block_port) — otherwise the HAU would spin on it.
  virtual void on_token_at_head(Hau& hau, int in_port, const Token& token);

  /// Called after a tuple has been fully processed.
  virtual void after_process(Hau& hau, int in_port, const Tuple& tuple) {
    (void)hau;
    (void)in_port;
    (void)tuple;
  }

  /// Emission interception: default sends immediately. Source preservation
  /// delays the send until the tuple is durable; input preservation copies
  /// it into the preservation buffer first.
  virtual void emit(Hau& hau, int out_port, Tuple tuple);

  /// Called after the HAU was restarted on a (possibly new) node, before
  /// processing resumes. State restoration is orchestrated by the scheme's
  /// recovery manager, not here.
  virtual void on_restart(Hau& hau) { (void)hau; }
};

/// The checkpoint image of one HAU. Stored (with its declared byte size) in
/// the simulated stores; carried by handle so live payload pointers survive
/// without a payload serialization registry — the simulation charges the
/// declared bytes that the real system would write.
struct CheckpointImage {
  std::uint64_t checkpoint_id = 0;
  std::vector<std::uint8_t> operator_state;  // real serialized operator state
  Bytes declared_state_size = 0;             // what state_size() estimated
  std::uint64_t source_next_seq = 0;
  /// For source HAUs under source preservation: index into the preserved
  /// tuple log marking the recovery replay position (entries at and after
  /// this index were dispatched after the checkpoint boundary). Maintained
  /// by the fault-tolerance scheme, not by capture_state().
  std::uint64_t preserve_boundary = 0;
  /// Per-in-port last processed edge sequence at checkpoint time. Baseline
  /// recovery asks upstream neighbours to resend preserved tuples after
  /// these positions.
  std::vector<std::uint64_t> in_port_progress;
  /// Per-out-port next edge sequence at checkpoint time, restored so that
  /// re-emitted tuples carry the same sequence numbers as the originals and
  /// downstream deduplication works.
  std::vector<std::uint64_t> out_port_next_seq;
  /// In-flight tuples captured between incoming and outgoing tokens
  /// (MS-src+ap): (out_port, tuple), resent downstream after recovery.
  std::vector<std::pair<int, Tuple>> inflight;

  Bytes total_declared() const;
  static constexpr Bytes kFixedOverhead = 1_KB;  // headers, descriptors
};

class Hau {
 public:
  Hau(Application* app, int id, std::unique_ptr<Operator> op, bool is_source,
      bool is_sink);
  ~Hau();

  Hau(const Hau&) = delete;
  Hau& operator=(const Hau&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return op_->name(); }
  Operator& op() { return *op_; }
  const Operator& op() const { return *op_; }
  bool is_source() const { return is_source_; }
  bool is_sink() const { return is_sink_; }
  Application& app() { return *app_; }

  net::NodeId node() const { return node_; }
  void place_on(net::NodeId n) { node_ = n; }

  // --- wiring (Application::deploy) ---
  void add_in_edge(Hau* upstream, int their_out_port);
  void add_out_edge(Hau* downstream, int their_in_port);
  /// Deliver a flow-control credit for an out-edge (one tuple consumed at
  /// the downstream neighbour).
  void on_credit(int out_port);
  int num_in_ports() const { return static_cast<int>(in_.size()); }
  int num_out_ports() const { return static_cast<int>(out_.size()); }
  Hau* upstream(int in_port) const { return in_.at(static_cast<std::size_t>(in_port)).from; }
  Hau* downstream(int out_port) const {
    return out_.at(static_cast<std::size_t>(out_port)).to;
  }
  /// The out-port on this HAU that feeds `downstream_hau`'s `their_in_port`.
  int find_out_port(const Hau& downstream_hau, int their_in_port) const;

  // --- fault-tolerance attachment ---
  void attach_ft(std::unique_ptr<HauFt> ft);
  HauFt& ft() { return *ft_; }

  // --- lifecycle ---
  void start();
  bool started() const { return started_; }
  /// The hosting node failed: buffers dropped, timers orphaned.
  void on_node_failed();
  bool failed() const { return failed_; }
  /// Restart on a (healthy) node after a failure; state is cleared, the
  /// scheme's recovery manager restores a checkpoint before resume().
  void restart_on(net::NodeId n);
  /// Resume a restarted HAU after its state has been restored: re-arms the
  /// operator's timers (on_open) and restarts the processing loop.
  void reopen();
  std::uint64_t incarnation() const { return incarnation_; }

  // --- dataflow ---
  /// Network delivery of a stream item on an in-port. Tuples whose edge
  /// sequence is not greater than the last received one are duplicates from
  /// a recovery resend and are dropped.
  void receive(int in_port, StreamItem item);
  /// Send a tuple downstream; assigns and returns the edge sequence number.
  /// The tuple enters the out-edge's flow-controlled queue and is dispatched
  /// as credits permit; a backlogged edge blocks further tuple processing
  /// (backpressure). Source-lineage tuples are timestamped at dispatch, so
  /// latency measures in-system time, not ingest backlog.
  std::uint64_t send_downstream(int out_port, Tuple tuple);
  /// Resend a tuple preserving its original edge sequence (recovery replay);
  /// bumps the edge counter past it so later sends stay monotonic.
  void resend_downstream(int out_port, Tuple tuple);
  /// Send a token downstream (checkpoint marker, small message). With
  /// `jump_queue`, the token is placed at the HEAD of the output queue
  /// (MS-src+ap's 1-hop tokens, paper Fig. 8 t=1); otherwise it queues
  /// behind previously emitted tuples.
  void send_token(int out_port, const Token& token, bool jump_queue = false);
  /// Tuples currently queued on out-edges behind an outgoing token — the
  /// in-flight set an asynchronous checkpoint must capture in addition to
  /// the tuples dispatched since the token.
  std::vector<std::pair<int, Tuple>> pending_behind_tokens() const;
  /// Restore an out-edge's credit window (reconnection after recovery).
  void reset_edge_flow(int out_port);
  Bytes pending_out_bytes() const;
  /// Number of tuples queued on out-edges awaiting dispatch.
  std::size_t pending_out_tuples() const;

  // --- processing control (used by fault-tolerance schemes) ---
  /// Suspend picking new work (a running job completes). Synchronous
  /// checkpoints pause; resume() continues. Pauses nest: processing resumes
  /// when every pause has been matched by a resume.
  void pause();
  void resume();
  bool paused() const { return pause_depth_ > 0; }
  /// Occupy the SPE thread with kernel work for `cost` (e.g. a k-means run
  /// at a window boundary): pauses, burns CPU, resumes.
  void busy_for(SimTime cost);
  void block_port(int in_port);
  void unblock_port(int in_port);
  bool port_blocked(int in_port) const;
  /// Consume a token at the head of a port (checkpoint alignment complete).
  Token pop_token(int in_port);
  bool head_is_token(int in_port) const;
  /// Multiplier applied to processing costs (copy-on-write tax during an
  /// asynchronous checkpoint).
  void set_cost_multiplier(double m) { cost_multiplier_ = m; }
  /// Charge extra CPU time on the processing critical path after the current
  /// tuple completes (e.g. input preservation's per-tuple save cost).
  void add_pending_cost(SimTime cost) { pending_post_cost_ += cost; }

  // --- state capture / restore ---
  Bytes state_size() const;
  CheckpointImage capture_state(std::vector<std::pair<int, Tuple>> inflight,
                                std::uint64_t checkpoint_id) const;
  /// Restore operator + HAU bookkeeping from an image. Returns the in-flight
  /// tuples for the scheme to resend.
  std::vector<std::pair<int, Tuple>> restore_state(const CheckpointImage& image);

  // --- utilities for schemes ---
  /// Run a CPU job on the hosting node, dropped if this HAU fails meanwhile.
  void run_on_cpu(SimTime cost, std::function<void()> done);
  /// Timer guarded by incarnation (dropped after failure/restart).
  void schedule(SimTime delay, std::function<void()> fn);
  /// Deliver `fn(target)` at the target HAU after a control-message delay;
  /// dropped if either endpoint is down or the target restarts meanwhile.
  void send_control(Hau& target, Bytes size, std::function<void(Hau&)> fn);

  // --- bookkeeping & stats ---
  std::uint64_t tuples_processed() const { return tuples_processed_; }
  std::uint64_t tuples_emitted() const { return tuples_emitted_; }
  /// Bump the lineage-stamping counter past replayed tuples so fresh
  /// emissions never reuse a preserved tuple's (source, seq) identity.
  void ensure_source_seq_at_least(std::uint64_t seq) {
    source_next_seq_ = std::max(source_next_seq_, seq);
  }
  std::uint64_t last_processed_edge_seq(int in_port) const;
  std::uint64_t next_source_seq() const { return source_next_seq_; }
  std::size_t buffered_items(int in_port) const;
  Bytes buffered_bytes() const;

  /// Round-robin scheduler entry; safe to call at any time.
  void maybe_schedule_processing();

 private:
  friend class HauOperatorContext;

  struct InEdge {
    Hau* from = nullptr;
    int their_out_port = -1;  // reverse port index on `from`
    std::deque<StreamItem> buffer;
    bool blocked = false;
    std::uint64_t last_processed_edge_seq = 0;
    std::uint64_t last_received_edge_seq = 0;
  };
  struct OutEdge {
    Hau* to = nullptr;
    int their_in_port = -1;
    std::uint64_t next_edge_seq = 1;
    int credits = 0;  // initialized from ClusterParams::flow_window at start
    std::deque<StreamItem> pending;
  };

  struct OutEdge;
  void enqueue_out(OutEdge& edge, StreamItem item, bool jump_queue = false);
  void pump_edge(OutEdge& edge);
  void dispatch(OutEdge& edge, StreamItem item);
  void return_credit(int in_port);
  bool blocked_on_send() const;
  void start_processing(int in_port);
  void finish_processing(int in_port, Tuple tuple);
  void emit_from_context(int out_port, Tuple tuple, const Tuple* current_input);

  Application* app_;
  int id_;
  std::unique_ptr<Operator> op_;
  bool is_source_;
  bool is_sink_;
  net::NodeId node_ = net::kInvalidNode;
  std::unique_ptr<HauFt> ft_;

  std::vector<InEdge> in_;
  std::vector<OutEdge> out_;

  bool started_ = false;
  bool failed_ = false;
  int pause_depth_ = 0;
  bool processing_ = false;
  int rr_next_port_ = 0;
  double cost_multiplier_ = 1.0;
  std::uint64_t incarnation_ = 1;

  std::uint64_t source_next_seq_ = 1;
  std::uint64_t tuples_processed_ = 0;
  std::uint64_t tuples_emitted_ = 0;
  SimTime pending_post_cost_ = SimTime::zero();
  /// Emissions from timer callbacks that fired while paused (the SPE thread
  /// is blocked during a synchronous checkpoint); flushed, unstamped, on
  /// resume so sequence numbers stay aligned with the dispatch order.
  std::deque<std::pair<int, Tuple>> pending_emissions_;

  Rng rng_;
};

}  // namespace ms::core
