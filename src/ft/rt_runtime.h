// Real-threads adapter for ft::Runtime — the protocol layer over
// rt::RtEngine.
//
// The same CheckpointCoordinator that drives MsScheme in the simulator
// drives a live engine here. RtRuntime supplies the Runtime contract
// (wall-clock, engine timers, the operator roster, epoch actions) and owns
// everything the engine deliberately does not: checkpoint files, source
// logs, epoch commit, and restart-and-replay recovery.
//
// Every durable file below travels inside a storage::durable_file frame
// (magic + length + CRC32C; see durable_layout.h for the payloads), written
// under the config's SyncMode fsync discipline, and recovery verifies what
// it reads: a corrupt delta invalidates only its chain suffix and recovery
// falls back to the newest verifiable epoch (full epochs beyond the live
// chain are retained as fallback rungs, params.retain_fallback_epochs); a
// corrupt manifest classifies its epoch as never-committed; a torn
// source-log tail is truncated to the last whole frame (ft.log.torn_frames)
// instead of silently resurfacing after the next append. Pre-checksum
// directories still recover via the legacy compat path.
//
// Durability layout under `config.dir`:
//   epoch_<E>/op_<i>.ckpt   per-operator full snapshot bytes of epoch E
//   epoch_<E>/op_<i>.delta  delta epochs (kSrcApDelta / delta_checkpoints):
//                           only the state the operator mutated since its
//                           previous cut. Delta epochs chain on the last
//                           committed epoch via the manifest's prev_epoch
//                           pointer; recovery walks each op's chain back to
//                           its newest full record and layers the deltas in
//                           order. A full epoch compacts the chain (every
//                           delta_compact_every deltas, or once accumulated
//                           delta bytes cross delta_compact_ratio × base)
//                           and garbage-collects every predecessor.
//   epoch_<E>/MANIFEST      commit marker (written as MANIFEST.tmp, then
//                           renamed into place) recording per-op sizes,
//                           kinds (full/delta), the chain predecessor and
//                           per-source replay boundaries — an epoch without
//                           a MANIFEST never existed; a crash mid-checkpoint
//                           (or mid-chain) therefore rolls back to the last
//                           complete epoch
//   source_<i>.log          length-prefixed source emission records, written
//                           by the engine's SourceTap *before* the tuple is
//                           dispatched (durable-before-dispatch) and
//                           truncated to the epoch boundary at commit
//   baseline/op_<i>.ckpt    RtMode::kBaseline only: per-unit independent
//                           checkpoint (tmp + rename). No manifest ties the
//                           units together and source logs are never
//                           truncated — the baseline's unbounded
//                           preservation, kept deliberately.
//
// Modes mirror the simulator's schemes:
//   kSrc      tokens trickle, each unit's snapshot is written synchronously
//             before its token moves on (EpochMode::kSync);
//   kSrcAp    snapshots serialize in memory and a helper writes behind the
//             dataflow (EpochMode::kAsync);
//   kSrcApAa  kSrcAp plus application-aware timing: a centralized sampler on
//             the engine timer thread feeds the same AaController state
//             machine the simulator uses (observation → profiling →
//             execution with alert mode; a period with no alert-fired
//             checkpoint ends with a forced one);
//   kSrcApDelta  kSrcAp plus delta checkpointing (chained op_<i>.delta
//             records, full-snapshot compaction) and a CadenceController
//             retuning the periodic interval from observed checkpoint cost
//             vs. the configured MTBF / recovery budget — the fifth scheme,
//             beyond the paper;
//   kBaseline no tokens: every unit checkpoints independently at its own
//             cadence via snapshot_now().
//
// Threading: the coordinator and all epoch bookkeeping live under one
// control mutex (ctl_mu_). Engine callbacks (snapshot sink on worker/helper
// threads, protocol probes under the per-operator mutex) take ctl_mu_, so
// code holding ctl_mu_ must never call engine functions that take a
// per-operator mutex (snapshot_now, op_state_size) — the AA sampler and the
// baseline driver sample outside the lock and report under it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"
#include "core/tuple.h"
#include "ft/aa_controller.h"
#include "ft/durable_layout.h"
#include "ft/cadence_controller.h"
#include "ft/failure_detector.h"
#include "ft/params.h"
#include "ft/probe.h"
#include "ft/protocol.h"
#include "ft/runtime.h"
#include "ft/stats.h"
#include "rt/engine.h"
#include "storage/durable_file.h"

namespace ms::ft {

enum class RtMode { kBaseline, kSrc, kSrcAp, kSrcApAa, kSrcApDelta };

/// How source-log records carry payloads across a restart. The engine keeps
/// payloads as shared_ptr<const Payload>; only the embedder knows the
/// concrete types, so it supplies the codec. Absent codec = payloads are
/// dropped on replay (size-only workloads).
struct TupleCodec {
  std::function<void(const core::Payload&, BinaryWriter&)> encode_payload;
  std::function<std::shared_ptr<const core::Payload>(BinaryReader&)>
      decode_payload;
};

struct RtRuntimeConfig {
  RtMode mode = RtMode::kSrcAp;
  /// Durable directory (checkpoints, manifests, source logs). Required.
  std::string dir;
  FtParams params;
  TupleCodec codec;
  /// Redirects the coordinator's ft.ckpt.* metrics (default: global()).
  MetricsRegistry* metrics = nullptr;
  /// Self-healing: a heartbeat tick on the engine timer publishes operator
  /// liveness into a FailureDetector and a supervisor thread turns
  /// missed-deadline verdicts into automatic fenced recovery with bounded
  /// exponential-backoff retries and crash-loop quarantine. The happy chaos
  /// path then needs no manual recover() call.
  bool auto_recover = false;
  /// How much is forced to media around durable writes (durable_file.h).
  /// kCommit — the paper-faithful discipline — fdatasyncs artifacts and
  /// fsyncs the parent directory around every rename commit point.
  storage::SyncMode sync_mode = storage::SyncMode::kCommit;
  /// Optional disk-fault hook consulted by every durable read/write
  /// (chaos drills; see failure/disk_fault.h). Not owned.
  storage::FaultInjector* disk_faults = nullptr;
};

class RtRuntime final : public Runtime {
 public:
  /// Installs the snapshot sink, source tap and protocol probe on `engine`
  /// (which must not be running yet) and scans `dir` for state left by a
  /// previous incarnation (existing logs, the highest epoch number).
  RtRuntime(rt::RtEngine* engine, RtRuntimeConfig config);
  ~RtRuntime() override;

  RtRuntime(const RtRuntime&) = delete;
  RtRuntime& operator=(const RtRuntime&) = delete;

  /// Start the engine and the mode's initiation machinery (periodic
  /// schedule, AA pipeline, or baseline cadences).
  Status start();

  /// Stop initiating checkpoints and stop the engine (drains in-flight
  /// epochs' snapshot deliveries first).
  void stop();

  /// Trigger one application checkpoint now (MS modes).
  Status begin_checkpoint();

  /// Block until `n` application checkpoints have completed since this
  /// runtime was constructed, or `timeout` elapses. Returns true on success.
  bool wait_checkpoints(std::uint64_t n, SimTime timeout);

  /// Most recent committed (manifest-durable) epoch number; 0 = none.
  std::uint64_t last_durable_epoch() const;

  /// Whole-application restart-and-replay recovery: load the last complete
  /// epoch (phases 1-3), start the engine and re-deliver preserved source
  /// tuples past the epoch boundary (phase 4). Requires the engine stopped.
  /// kBaseline restores the per-unit files instead (correct only from a
  /// quiescent cut — the weakness the MS modes remove). On success `stats`
  /// (if non-null) receives the phase breakdown.
  Status recover(RecoveryStats* stats = nullptr);

  /// Protocol instrumentation spine (same FtPoint vocabulary as the sim
  /// schemes; chaos harnesses and tracers subscribe here). Subscribe before
  /// start(); probes fire from worker, helper and timer threads.
  void add_probe(FtProbe probe);

  /// Crash drill: from this instant the runtime stops writing checkpoint
  /// files and manifests (as a killed process would) while source-log
  /// appends continue — durable-before-dispatch holds right up to the
  /// "crash". recover() refuses (StatusCode::kAborted) until clear_crash().
  /// Under auto_recover the crash also silences heartbeats, so the
  /// supervisor detects it and self-heals.
  void simulate_crash() { crashed_.store(true); }
  void clear_crash() { crashed_.store(false); }
  bool crashed() const { return crashed_.load(); }

  // --- health introspection ---
  /// OK while healthy (or healed); degraded — kUnavailable with the reason —
  /// after crash-loop quarantine or retry exhaustion (config.auto_recover),
  /// or kDataLoss while a source log is missing records from a failed append
  /// that no committed checkpoint boundary covers yet (a recovery inside
  /// that window could not replay the lost tuple).
  Status health() const;
  /// Completed automatic recoveries since construction.
  std::uint64_t auto_recoveries() const { return auto_recoveries_.load(); }
  /// Null unless config.auto_recover.
  FailureDetector* detector() { return detector_.get(); }
  /// Fault injection: suppress `op`'s heartbeats for `delay` from now. The
  /// operator looks silent (suspected) without being dead — the detector
  /// must exonerate it once heartbeats resume.
  void inject_heartbeat_delay(int op, SimTime delay);

  CheckpointCoordinator& coordinator() { return *coordinator_; }
  /// Non-null only in kSrcApAa mode.
  AaController* aa() { return aa_.get(); }
  /// Non-null in kSrcApDelta mode (or when params.adaptive_cadence is set).
  CadenceController* cadence() { return cadence_.get(); }
  rt::RtEngine& engine() { return *engine_; }
  RtMode mode() const { return config_.mode; }

  // --- ft::Runtime (called by the coordinator under ctl_mu_) ---
  int num_units() const override;
  bool unit_is_source(int unit) const override;
  bool unit_alive(int unit) const override;
  SimTime now() const override;
  /// Wraps the engine timer; `fn` runs under ctl_mu_ (the coordinator's
  /// callbacks assume it).
  void schedule_after(SimTime delay, std::function<void()> fn) override;
  void start_epoch(std::uint64_t epoch) override;
  void commit_epoch(std::uint64_t epoch) override;
  void abandon_epoch(std::uint64_t epoch) override;

 private:
  struct EpochState {
    std::uint64_t disk_epoch = 0;
    /// recovery_seq_ at initiation: snapshots fenced against a recovery that
    /// happened while the bytes were in flight.
    std::uint64_t fence = 0;
    /// Kind requested from the engine (delta only when the committed chain
    /// is intact and compaction is not due).
    rt::SnapshotKind kind = rt::SnapshotKind::kFull;
    SimTime initiated;
    std::map<int, SimTime> aligned_at;
    std::map<int, std::uint64_t> sizes;
    /// What each op actually delivered: an op without supports_delta()
    /// serializes fully even on a delta epoch.
    std::map<int, bool> deltas;
    std::map<int, std::uint64_t> boundaries;
    std::map<int, std::uint64_t> next_seqs;
  };

  /// One source's preservation log (appended under its own mutex by the
  /// engine tap; rewritten at truncation).
  struct SourceLog {
    /// failed_since value meaning "no uncovered append failure".
    static constexpr std::uint64_t kNoAppendFailure = ~std::uint64_t{0};

    std::mutex mu;
    std::string path;
    storage::AppendFile out;        // append handle, reopened on truncation
    /// Pre-checksum file format (no MSLG header, no per-frame CRC). Appends
    /// stay format-consistent with the existing bytes; the first truncation
    /// rewrite upgrades the file to the checksummed format.
    bool legacy = false;
    std::uint64_t begin_index = 0;  // first record still in the file
    std::uint64_t next_index = 0;   // index the next append gets
    /// Lowest record index whose append failed (the tuple went downstream
    /// but is absent from the replay log). Until every retained epoch's
    /// boundary passes it, a recovery would silently replay without that
    /// tuple — health() reports the window. Guarded by mu.
    std::uint64_t failed_since = kNoAppendFailure;
  };

  /// A log record rehydrated for replay or truncation.
  struct LogRecord {
    std::uint64_t index = 0;
    int out_port = 0;
    core::Tuple tuple;
  };

  /// Manifest payload layout lives in durable_layout.h so the msverify
  /// scrubber decodes exactly what the runtime writes.
  using Manifest = EpochManifest;

  /// What one source log's on-disk bytes look like (read_log out-param).
  struct LogHealth {
    bool new_format = false;  // MSLG header + per-frame CRCs
    bool torn = false;        // trailing bytes past the last whole frame
    std::uint64_t valid_bytes = 0;  // end of the last verifiable frame
    /// Non-OK (kUnavailable) when the file could not be read at all: the
    /// records may be intact — an empty return with this set is "could not
    /// look", never "nothing to replay". A missing file stays OK.
    Status error = Status::ok();
  };

  /// Everything recovery needs from one committed epoch (chain resolved):
  /// per-op state bytes, layered deltas, replay boundaries.
  struct LoadedEpoch {
    std::vector<std::vector<std::uint8_t>> state;
    std::vector<std::vector<std::vector<std::uint8_t>>> deltas;
    std::vector<std::uint64_t> boundaries;
    std::vector<std::uint64_t> next_seqs;
    std::uint64_t bytes_read = 0;
  };

  void emit_probe(FtPoint point, int unit, std::uint64_t id) {
    for (const auto& p : probes_) p(point, unit, id);
  }

  // Engine hook bodies.
  void on_snapshot(const rt::Snapshot& snap);
  void on_source_emit(int op, int out_port, const core::Tuple& tuple);
  void on_engine_proto(rt::ProtoPoint point, int op, std::uint64_t epoch);

  // Disk helpers.
  std::string epoch_dir(std::uint64_t epoch) const;
  std::string log_path(int op) const;
  storage::DurableOptions durable_opts() const {
    return {config_.sync_mode, config_.disk_faults};
  }
  /// Read + verify epoch_<E>/MANIFEST. kNotFound = never committed;
  /// kDataLoss = frame or payload fails verification; kUnavailable =
  /// transient read error.
  Result<Manifest> read_manifest(std::uint64_t epoch) const;
  /// Parse one source log; torn tails (crash mid-append, bad frame CRC) are
  /// dropped and reported via `health` (the file itself is untouched here —
  /// scan_existing_state does the truncation). A transient read error sets
  /// `health->error` and returns no records — callers must distinguish that
  /// from an empty log or replay silently loses the whole suffix.
  std::vector<LogRecord> read_log(int op, LogHealth* health = nullptr) const;
  void truncate_log(int op, std::uint64_t boundary);
  void scan_existing_state();
  /// Resolve `epoch`'s delta chain and read + verify every blob. kDataLoss =
  /// some artifact in the closure is corrupt/missing (recovery falls back);
  /// kUnavailable = transient read error (recovery aborts retryably).
  Status load_epoch_state(std::uint64_t epoch, LoadedEpoch* out);

  // Mode drivers.
  void arm_initiation();
  void schedule_baseline(int op);
  void start_aa_pipeline();
  void aa_sample_tick();
  void aa_query_dynamic();

  // Self-heal supervisor (config.auto_recover).
  void arm_heartbeats();
  void heartbeat_tick();
  void start_supervisor();
  void stop_supervisor();
  void supervisor_loop();
  void attempt_self_heal();

  rt::RtEngine* engine_;
  RtRuntimeConfig config_;
  std::chrono::steady_clock::time_point epoch0_;

  mutable std::mutex ctl_mu_;
  std::unique_ptr<CheckpointCoordinator> coordinator_;
  std::unique_ptr<AaController> aa_;
  /// In-flight epochs keyed by *disk* epoch number (coordinator id +
  /// epoch_base_). Guarded by ctl_mu_.
  std::map<std::uint64_t, EpochState> pending_;
  /// Disk epoch numbering continues across restarts: coordinator ids start
  /// at 1 in every incarnation, the base bridges to what is already on disk.
  std::uint64_t epoch_base_ = 0;
  std::uint64_t last_durable_ = 0;   // guarded by ctl_mu_
  /// The committed chain ending at last_durable_, oldest (full base) first —
  /// the set of epoch dirs recovery may need and commit-time GC removes when
  /// a full epoch supersedes them. Non-delta modes degenerate to a single
  /// entry (the predecessor removed at the next commit). Guarded by ctl_mu_.
  std::vector<std::uint64_t> chain_epochs_;
  /// Fallback rungs: committed full epochs superseded by a newer chain but
  /// retained (newest params.retain_fallback_epochs of them, oldest first) so
  /// a corrupt tip never strands recovery. Guarded by ctl_mu_.
  std::vector<std::uint64_t> fallback_epochs_;
  /// Every committed epoch on disk, newest first — recovery's fallback
  /// ladder. Rebuilt by scan_existing_state (includes epochs whose manifest
  /// was transiently unreadable). Guarded by ctl_mu_.
  std::vector<std::uint64_t> committed_desc_;
  /// Per-surviving-epoch source replay boundaries (epoch -> op -> boundary):
  /// commit-time log truncation may only drop records below the *oldest*
  /// retained epoch's boundary, or falling back to a rung could not replay
  /// with full fidelity. Guarded by ctl_mu_.
  std::map<std::uint64_t, std::map<int, std::uint64_t>> retained_boundaries_;
  /// True whenever the operators' in-memory dirty baselines are NOT the tip
  /// of the committed chain — at construction, after an abandoned epoch
  /// (serialization advanced the baselines but the files were discarded) and
  /// after a recovery. The next epoch must then be full; only a committed
  /// full epoch clears it. Guarded by ctl_mu_.
  bool chain_broken_ = true;
  int deltas_since_full_ = 0;          // guarded by ctl_mu_
  std::uint64_t chain_delta_bytes_ = 0;  // guarded by ctl_mu_
  std::uint64_t base_bytes_ = 0;         // guarded by ctl_mu_
  /// Delta epochs enabled (kSrcApDelta or params.delta_checkpoints).
  bool delta_enabled_ = false;
  std::unique_ptr<CadenceController> cadence_;
  bool initiation_stopped_ = false;  // guarded by ctl_mu_
  /// Recovery fence. Bumped at the start of every recover(); epoch state and
  /// timer callbacks stamped with an older value are stale in-flight
  /// messages from the pre-recovery incarnation and are dropped.
  std::atomic<std::uint64_t> recovery_seq_{0};

  std::vector<std::unique_ptr<SourceLog>> logs_;  // index = op; null if not source

  std::vector<FtProbe> probes_;
  std::atomic<bool> crashed_{false};

  // --- self-heal supervisor state (config.auto_recover) ---
  std::unique_ptr<FailureDetector> detector_;
  std::thread supervisor_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  std::atomic<bool> supervisor_stop_{false};
  /// Per-op heartbeat suppression deadline (ns since epoch0_); written by
  /// inject_heartbeat_delay, read by heartbeat_tick.
  std::unique_ptr<std::atomic<std::int64_t>[]> hb_suppress_until_;
  std::atomic<std::uint64_t> auto_recoveries_{0};
  mutable std::mutex heal_mu_;
  Status health_ = Status::ok();     // guarded by heal_mu_
  bool quarantined_ = false;         // guarded by heal_mu_
  int crash_streak_ = 0;             // guarded by heal_mu_
  SimTime last_heal_completed_;      // guarded by heal_mu_; zero = never
  // Durable-state integrity counters.
  Counter* m_torn_frames_ = nullptr;        // ft.log.torn_frames
  Counter* m_append_failures_ = nullptr;    // ft.log.append_failures
  Counter* m_corrupt_manifests_ = nullptr;  // ft.scan.corrupt_manifests
  Counter* m_corrupt_artifacts_ = nullptr;  // ft.recovery.corrupt_artifacts
  Counter* m_fallbacks_ = nullptr;          // ft.recovery.fallbacks

  Counter* m_heal_attempts_ = nullptr;
  Counter* m_heal_success_ = nullptr;
  Counter* m_heal_failed_ = nullptr;
  Counter* m_heal_exhausted_ = nullptr;
  Counter* m_heal_quarantined_ = nullptr;

  // AA sampler state (timer thread only, except where noted).
  struct AaSample {
    double last_size = 0.0;
    double last_icr = 0.0;
    SimTime last_at;
    bool valid = false;
    // Observation accumulation.
    double min_size = 0.0;
    double sum_size = 0.0;
    int samples = 0;
  };
  std::vector<AaSample> aa_samples_;
  std::atomic<bool> alert_reporting_{false};
  enum class AaStage { kObservation, kProfiling, kExecution };
  AaStage aa_stage_ = AaStage::kObservation;  // timer thread only
  SimTime aa_stage_end_;                      // timer thread only
  int aa_profile_left_ = 0;                   // timer thread only
  /// Next plain periodic checkpoint while observing/profiling
  /// (checkpoint_during_profiling). Timer thread only.
  SimTime aa_next_plain_;

  // Baseline per-unit checkpoint counters (timer thread only).
  std::vector<std::uint64_t> baseline_seq_;
};

}  // namespace ms::ft
