// Fig. 12 — Throughput of baseline, MS-src, MS-src+ap and MS-src+ap+aa for
// 0..8 checkpoints within a 10-minute window, normalized to the baseline
// with zero checkpoints, for the three applications.
#include <cstdio>

#include "common_case.h"

int main(int argc, char** argv) {
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  std::printf("=== Fig. 12: normalized throughput vs. number of checkpoints "
              "in %s ===\n",
              quick ? "2 minutes (--quick)" : "10 minutes");
  for (const AppKind app : kAllApps) {
    const CommonCaseSweep sweep = run_common_case_sweep(app, quick);
    print_panel(app, sweep, Metric::kThroughput);
    // Paper checkpoints (for EXPERIMENTS.md): at 0 checkpoints MS-src beats
    // the baseline by the source-preservation gain; at 3 checkpoints the
    // stacked gains reach ~226 % on average across the applications.
    const double src_gain = sweep.cells.at(Scheme::kMsSrc).at(0).throughput /
                                sweep.baseline_zero_throughput -
                            1.0;
    const double total_gain_at3 =
        sweep.cells.at(Scheme::kMsSrcApAa).at(3).throughput /
            sweep.cells.at(Scheme::kBaseline).at(3).throughput -
        1.0;
    std::printf("source preservation gain @0 ckpt: +%.0f%%   "
                "MS-src+ap+aa vs baseline @3 ckpt: +%.0f%%\n",
                src_gain * 100.0, total_gain_at3 * 100.0);
  }
  return 0;
}
