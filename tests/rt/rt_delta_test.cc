// Delta-checkpoint chains on the real-threads runtime (RtMode::kSrcApDelta):
// the first epoch of an incarnation writes a full base snapshot, subsequent
// epochs persist only what mutated (op_<i>.delta chained on the base via the
// manifest's prev_epoch pointer), a full snapshot compacts the chain every
// delta_compact_every epochs, and recovery layers base + deltas back to a
// state byte-identical to what a full snapshot would have restored — also
// under chaos kills at every checkpoint and recovery protocol point.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "../testing/rt_feed.h"
#include "../testing/test_ops.h"
#include "failure/disk_fault.h"
#include "failure/rt_chaos.h"
#include "ft/rt_runtime.h"
#include "rt/engine.h"
#include "storage/durable_file.h"

namespace ms::ft {
namespace {

namespace fs = std::filesystem;
using ms::failure::RtChaos;
using ms::testing::ExternalFeed;
using ms::testing::FeedSource;
using ms::testing::int_codec;
using ms::testing::IntPayload;
using ms::testing::RecordingSink;
using ms::testing::wait_drained;
using ms::testing::wait_for;
using ms::testing::wait_quiescent;

/// Keyed running sums with per-epoch dirty tracking — the delta-aware
/// operator. The dirty-key set is pinned/cleared by mark_checkpointed() at
/// the serialization cut, so a delta blob carries exactly the keys mutated
/// since the previous committed cut. serialize_state() walks the (ordered)
/// map, making full-state bytes deterministic for byte-identity checks.
class DeltaKvRelay final : public core::Operator {
 public:
  explicit DeltaKvRelay(std::string name) : core::Operator(std::move(name)) {}

  void process(int, const core::Tuple& t, core::OperatorContext& ctx) override {
    const auto* p = t.payload_as<IntPayload>();
    MS_CHECK(p != nullptr);
    const std::int64_t key = p->value % 16;
    table_[key] += p->value;
    dirty_.insert(key);
    ctx.emit(0, t);
  }

  Bytes state_size() const override {
    return 8 + static_cast<Bytes>(table_.size()) * 16;
  }
  Bytes state_delta_size() const override {
    return 8 + static_cast<Bytes>(dirty_.size()) * 16;
  }

  void serialize_state(BinaryWriter& w) const override {
    w.write<std::uint64_t>(table_.size());
    for (const auto& [k, v] : table_) {
      w.write(k);
      w.write(v);
    }
  }
  void deserialize_state(BinaryReader& r) override {
    clear_state();
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = r.read<std::int64_t>();
      table_[k] = r.read<std::int64_t>();
    }
  }
  void clear_state() override {
    table_.clear();
    dirty_.clear();
  }

  bool supports_delta() const override { return true; }
  void serialize_delta(BinaryWriter& w) const override {
    w.write<std::uint64_t>(dirty_.size());
    for (const std::int64_t k : dirty_) {
      w.write(k);
      w.write(table_.at(k));
    }
  }
  void apply_delta(BinaryReader& r) override {
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = r.read<std::int64_t>();
      table_[k] = r.read<std::int64_t>();
    }
  }
  void mark_checkpointed() override { dirty_.clear(); }

  const std::map<std::int64_t, std::int64_t>& table() const { return table_; }

 private:
  std::map<std::int64_t, std::int64_t> table_;
  std::set<std::int64_t> dirty_;
};

/// feed -> kv relay (delta-capable) -> sink. The feed source and recording
/// sink do NOT support deltas, so every delta epoch is a mixed epoch: the kv
/// relay delivers a .delta, its neighbours fall back to full .ckpt blobs.
core::QueryGraph delta_chain(std::shared_ptr<ExternalFeed> feed) {
  core::QueryGraph g;
  const int src = g.add_source("src", [feed] {
    return std::make_unique<FeedSource>("src", feed, SimTime::micros(200), 4);
  });
  const int kv = g.add_operator(
      "kv", [] { return std::make_unique<DeltaKvRelay>("kv"); });
  const int sink =
      g.add_sink("sink", [] { return std::make_unique<RecordingSink>("sink"); });
  g.connect(src, kv);
  g.connect(kv, sink);
  return g;
}

constexpr int kKvOp = 1;
constexpr int kSinkOp = 2;

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

RtRuntimeConfig delta_config(const std::string& dir, int compact_every = 100) {
  RtRuntimeConfig cfg;
  cfg.mode = RtMode::kSrcApDelta;
  cfg.dir = dir;
  cfg.params.periodic = false;  // checkpoints fire on the tests' command
  cfg.params.delta_compact_every = compact_every;
  cfg.codec = int_codec();
  return cfg;
}

std::vector<std::uint8_t> full_state_bytes(core::Operator& op) {
  BinaryWriter w;
  op.serialize_state(w);
  return w.take();
}

void expect_sink_exact(rt::RtEngine& engine, std::int64_t n) {
  const auto& sink = static_cast<const RecordingSink&>(engine.op(kSinkOp));
  ASSERT_EQ(sink.values.size(), static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(sink.values[static_cast<std::size_t>(i)], i)
        << "wrong/duplicated value at position " << i;
  }
}

/// Epoch directories under `dir` that committed (carry a MANIFEST).
std::vector<fs::path> committed_epochs(const std::string& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("epoch_", 0) == 0 &&
        fs::exists(entry.path() / "MANIFEST")) {
      out.push_back(entry.path());
    }
  }
  return out;
}

int count_files_with_extension(const std::string& dir, const char* ext) {
  int n = 0;
  for (const auto& epoch : committed_epochs(dir)) {
    for (const auto& f : fs::directory_iterator(epoch)) {
      if (f.path().extension() == ext) ++n;
    }
  }
  return n;
}

bool take_checkpoint(RtRuntime& runtime, std::uint64_t completed_so_far) {
  if (!runtime.begin_checkpoint().is_ok()) return false;
  return runtime.wait_checkpoints(completed_so_far + 1, SimTime::seconds(10));
}

// --- the chain itself -------------------------------------------------------

// Crash after several deltas, before any compaction: recovery must layer
// base + deltas to the exact serialized state of every operator — compared
// byte-for-byte against the pre-crash incarnation at the same cut.
TEST(RtDeltaTest, ChainRecoveryIsByteIdenticalToPreCrashState) {
  auto feed = std::make_shared<ExternalFeed>();
  const auto cfg = delta_config(fresh_dir("ms_delta_bytes"));

  std::vector<std::vector<std::uint8_t>> reference;
  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    ASSERT_TRUE(runtime.start().is_ok());

    // Base (epoch 1 of the incarnation is always full), then two deltas
    // with fresh mutations between the cuts.
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 1));
    wait_drained(engine, engine.sink_tuples() + 100);

    // Fence the world, then cut the final delta at a quiescent point: the
    // live state at stop() equals the chain's reconstruction target.
    feed->paused.store(true);
    wait_quiescent(engine);
    ASSERT_TRUE(take_checkpoint(runtime, 2));
    total = feed->cursor.load();

    runtime.simulate_crash();
    runtime.stop();
    for (int i = 0; i < engine.num_operators(); ++i) {
      reference.push_back(full_state_bytes(engine.op(i)));
    }
  }
  // The chain on disk really is base + deltas: the kv relay wrote .delta
  // blobs on epochs 2 and 3 while its delta-unaware neighbours fell back to
  // full .ckpt files.
  EXPECT_EQ(count_files_with_extension(cfg.dir, ".delta"), 2);
  EXPECT_GT(count_files_with_extension(cfg.dir, ".ckpt"), 0);

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  RecoveryStats stats;
  ASSERT_TRUE(runtime.recover(&stats).is_ok());
  wait_quiescent(engine);
  runtime.stop();

  for (int i = 0; i < engine.num_operators(); ++i) {
    EXPECT_EQ(full_state_bytes(engine.op(i)), reference[static_cast<std::size_t>(i)])
        << "operator " << i << " restored state diverges from the cut";
  }
  expect_sink_exact(engine, total);
}

// Kill mid-run with values still in flight past the last delta cut: layered
// restore plus source-log replay must still be exactly-once at the sink.
TEST(RtDeltaTest, ReplayAfterDeltaRestoreIsExactlyOnce) {
  auto feed = std::make_shared<ExternalFeed>();
  const auto cfg = delta_config(fresh_dir("ms_delta_replay"));

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));  // full base
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 1));  // delta
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 2));  // delta
    // Keep producing past the last cut, then pull the plug.
    wait_drained(engine, engine.sink_tuples() + 150);
    runtime.simulate_crash();
    feed->paused.store(true);
    wait_quiescent(engine);
    total = feed->cursor.load();
    runtime.stop();
  }

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);

  const auto& kv = static_cast<const DeltaKvRelay&>(engine.op(kKvOp));
  std::map<std::int64_t, std::int64_t> expect;
  for (std::int64_t v = 0; v < total; ++v) expect[v % 16] += v;
  EXPECT_EQ(kv.table(), expect);
}

// Every delta_compact_every-th epoch is a full snapshot that supersedes the
// chain; the old chain's directories are garbage-collected at its commit.
TEST(RtDeltaTest, CompactionWritesFullEpochAndCollectsTheChain) {
  auto feed = std::make_shared<ExternalFeed>();
  const auto cfg = delta_config(fresh_dir("ms_delta_compact"),
                                /*compact_every=*/2);

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 50);
    std::uint64_t done = 0;
    // full, delta, delta, full(compaction) — the compacting commit GCs the
    // chained delta epochs but keeps the superseded chain's base as a
    // fallback rung (retain_fallback_epochs), so two full epochs survive.
    for (int i = 0; i < 4; ++i) {
      wait_drained(engine, engine.sink_tuples() + 50);
      ASSERT_TRUE(take_checkpoint(runtime, done));
      ++done;
    }
    ASSERT_TRUE(wait_for([&cfg] {
      return committed_epochs(cfg.dir).size() == 2;  // GC ran
    }));
    EXPECT_EQ(count_files_with_extension(cfg.dir, ".delta"), 0);
    EXPECT_EQ(count_files_with_extension(cfg.dir, ".ckpt"), 6);

    runtime.simulate_crash();
    feed->paused.store(true);
    wait_quiescent(engine);
    total = feed->cursor.load();
    runtime.stop();
  }

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);
}

// Non-delta modes must keep writing plain full snapshots even when a
// delta-capable operator sits in the graph.
TEST(RtDeltaTest, SrcApModeIgnoresDeltaSupport) {
  auto feed = std::make_shared<ExternalFeed>();
  RtRuntimeConfig cfg;
  cfg.mode = RtMode::kSrcAp;
  cfg.dir = fresh_dir("ms_delta_off");
  cfg.params.periodic = false;
  cfg.codec = int_codec();

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  ASSERT_TRUE(runtime.start().is_ok());
  wait_drained(engine, 50);
  ASSERT_TRUE(take_checkpoint(runtime, 0));
  wait_drained(engine, engine.sink_tuples() + 50);
  ASSERT_TRUE(take_checkpoint(runtime, 1));
  feed->paused.store(true);
  wait_quiescent(engine);
  runtime.stop();

  EXPECT_EQ(count_files_with_extension(cfg.dir, ".delta"), 0);
}

// --- chain-breaking edge cases ---------------------------------------------

// A manifest write failure discards an epoch whose serialize cuts already
// advanced the operators' dirty baselines. The runtime must rebase (next
// epoch full) — if it kept chaining deltas on the older durable tip, the
// mutations captured only in the discarded epoch would be silently lost.
TEST(RtDeltaTest, ManifestWriteFailureForcesFullRebase) {
  auto feed = std::make_shared<ExternalFeed>();
  const auto cfg = delta_config(fresh_dir("ms_delta_manifest_fail"));
  const std::string epoch3 = cfg.dir + "/epoch_3";

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    // All three op blobs of epoch 3 land before the commit; replacing the
    // epoch directory with a regular file right after the last blob's
    // kCheckpointDone makes exactly the MANIFEST write fail (ENOTDIR on its
    // temp file) — the deterministic stand-in for a full disk at the worst
    // instant. The probe fires under ctl_mu_ on the committing thread, so
    // the swap is ordered strictly before the manifest write.
    std::atomic<int> epoch3_done{0};
    runtime.add_probe([&](FtPoint p, int, std::uint64_t id) {
      if (p == FtPoint::kCheckpointDone && id == 3 &&
          epoch3_done.fetch_add(1) + 1 == 3) {
        fs::remove_all(epoch3);
        std::ofstream(epoch3, std::ios::binary).put('x');
      }
    });
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));  // full base
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 1));  // delta
    // Window of mutations that will exist ONLY in doomed epoch 3's delta.
    wait_drained(engine, engine.sink_tuples() + 100);
    feed->paused.store(true);
    wait_quiescent(engine);
    total = feed->cursor.load();
    // The coordinator counts the epoch complete (every unit reported) even
    // though the commit's manifest write fails: nothing became durable.
    ASSERT_TRUE(take_checkpoint(runtime, 2));
    EXPECT_EQ(runtime.last_durable_epoch(), 2u);
    EXPECT_FALSE(fs::exists(epoch3)) << "orphaned failed epoch not cleaned";
    // The chain is broken: the next epoch must be a full snapshot, which
    // supersedes the old base+delta pair (GCing the delta, keeping the old
    // base as a fallback rung). A delta here would chain on epoch 2 and
    // lose the epoch-3 window forever.
    ASSERT_TRUE(take_checkpoint(runtime, 3));
    EXPECT_EQ(runtime.last_durable_epoch(), 4u);
    EXPECT_EQ(committed_epochs(cfg.dir).size(), 2u);
    runtime.simulate_crash();
    runtime.stop();
  }

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);
  const auto& kv = static_cast<const DeltaKvRelay&>(engine.op(kKvOp));
  std::map<std::int64_t, std::int64_t> expect;
  for (std::int64_t v = 0; v < total; ++v) expect[v % 16] += v;
  EXPECT_EQ(kv.table(), expect);
}

// An unreadable mid-chain manifest must fail recovery WITHOUT deleting the
// chain's intact epochs: a transient read error (EIO, fd exhaustion) is
// retryable only if the bytes survive the failed attempt. (Corrupt *bytes*
// — a failed CRC — are a different story: that is definitive damage, and
// the fallback drills in rt_corruption_test cover it.)
TEST(RtDeltaTest, UnreadableMidChainManifestDoesNotDeleteTheChain) {
  auto feed = std::make_shared<ExternalFeed>();
  auto cfg = delta_config(fresh_dir("ms_delta_bad_manifest"));

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));  // full base
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 1));  // delta
    feed->paused.store(true);
    wait_quiescent(engine);
    ASSERT_TRUE(take_checkpoint(runtime, 2));  // delta (the tip)
    total = feed->cursor.load();
    runtime.simulate_crash();
    runtime.stop();
  }

  // Every read of the mid-chain manifest (epoch 2) fails EIO-style until
  // the fault clears; the bytes on disk stay intact throughout.
  failure::DiskFaultInjector faults;
  failure::DiskFaultInjector::Options match;
  match.path_contains = "epoch_2/MANIFEST";
  match.sticky = true;
  faults.arm_read(storage::ArtifactKind::kManifest, storage::ReadFault::kError,
                  /*offset=*/0, match);
  cfg.disk_faults = &faults;

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);  // constructor scan sees the broken walk
  ASSERT_FALSE(runtime.recover(nullptr).is_ok());
  EXPECT_GT(faults.injected(), 0);
  // Nothing was garbage-collected: the full base (unreached by the broken
  // chain walk) and both deltas are still on disk.
  EXPECT_TRUE(fs::exists(cfg.dir + "/epoch_1/MANIFEST"));
  EXPECT_TRUE(fs::exists(cfg.dir + "/epoch_2/MANIFEST"));
  EXPECT_TRUE(fs::exists(cfg.dir + "/epoch_3/MANIFEST"));

  // The transient fault clears: the retry must reconstruct the exact
  // pre-crash state from the preserved chain.
  faults.clear();
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);
}

// snapshot_now() is outside the coordinator's chain: it must not advance the
// operator's delta baseline, or the next committed delta silently omits
// every mutation between the chain tip and the ad-hoc capture.
TEST(RtDeltaTest, SnapshotNowDoesNotAdvanceTheDeltaBaseline) {
  auto feed = std::make_shared<ExternalFeed>();
  const auto cfg = delta_config(fresh_dir("ms_delta_snapshot_now"));

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));  // full base
    // Mutations landing between the base cut and the next delta cut...
    wait_drained(engine, engine.sink_tuples() + 100);
    feed->paused.store(true);
    wait_quiescent(engine);
    // ...must survive an interleaved ad-hoc full capture: if this advanced
    // the dirty baseline, the committed delta below would be empty and the
    // window above would be lost to recovery.
    ASSERT_TRUE(engine.snapshot_now(kKvOp, /*epoch=*/999).is_ok());
    ASSERT_TRUE(take_checkpoint(runtime, 1));  // delta
    total = feed->cursor.load();
    runtime.simulate_crash();
    runtime.stop();
  }

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);
  const auto& kv = static_cast<const DeltaKvRelay&>(engine.op(kKvOp));
  std::map<std::int64_t, std::int64_t> expect;
  for (std::int64_t v = 0; v < total; ++v) expect[v % 16] += v;
  EXPECT_EQ(kv.table(), expect);
}

// --- chaos kills against the chain -----------------------------------------

struct PointName {
  template <typename ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    std::string name = ft_point_name(point_of(info.param));
    for (char& c : name) {
      if (c == '-' || c == '+') c = '_';
    }
    return name;
  }
  static FtPoint point_of(FtPoint p) { return p; }
  template <typename P>
  static FtPoint point_of(const P& p) {
    return p.point;
  }
};

/// A kill point plus how many times it fires per completed epoch in the
/// 3-op chain (1 source + 2 downstream): the chaos trigger for "first
/// firing inside attempt N" is (N-1) * per_epoch + 1.
struct KillPoint {
  FtPoint point;
  int per_epoch;
};

// A base + one delta are durable; the process dies inside the *next* delta
// attempt at the scripted point. The torn attempt must not corrupt the
// durable chain: recovery replays base + delta + log, exactly once.
class DeltaCheckpointKillTest : public ::testing::TestWithParam<KillPoint> {};

TEST_P(DeltaCheckpointKillTest, DurableChainSurvivesKilledDeltaAttempt) {
  auto feed = std::make_shared<ExternalFeed>();
  const KillPoint kp = GetParam();
  const auto cfg = delta_config(
      fresh_dir(std::string("ms_delta_kill_") + ft_point_name(kp.point)));

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    RtChaos chaos(&runtime);
    // Let two epochs (base + delta) complete; die at the point's first
    // firing inside the third attempt.
    chaos.crash_on(kp.point, /*hau_id=*/-1,
                   /*occurrence=*/2 * kp.per_epoch + 1);
    chaos.arm();
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));  // full base
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 1));  // delta
    wait_drained(engine, engine.sink_tuples() + 100);
    const std::uint64_t durable = runtime.last_durable_epoch();
    ASSERT_TRUE(runtime.begin_checkpoint().is_ok());  // dies inside
    ASSERT_TRUE(ms::testing::wait_for(
        [&runtime] { return runtime.crashed(); }, std::chrono::seconds(10)))
        << "kill point never reached: " << ft_point_name(kp.point);
    EXPECT_EQ(chaos.kills(), 1);
    EXPECT_EQ(runtime.last_durable_epoch(), durable);
    wait_drained(engine, engine.sink_tuples() + 50);
    feed->paused.store(true);
    wait_quiescent(engine);
    total = feed->cursor.load();
    runtime.stop();
  }

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolPoints, DeltaCheckpointKillTest,
    ::testing::Values(
        KillPoint{FtPoint::kTokenAlignStart, 1},   // token in flight
        KillPoint{FtPoint::kTokenReceived, 3},     // token at a port head
                                                   // (control edge included:
                                                   // sources fire it too)
        KillPoint{FtPoint::kSerializeStart, 3},    // serialize window
        KillPoint{FtPoint::kForkDone, 3},          // post-fork window
        KillPoint{FtPoint::kCheckpointWrite, 3}),  // disk I/O
    PointName());

// The process dies *during recovery from a delta chain*, in each recovery
// phase; the retry must still reconstruct base + delta exactly.
class DeltaRecoveryKillTest : public ::testing::TestWithParam<FtPoint> {};

TEST_P(DeltaRecoveryKillTest, SecondRecoveryFromChainSucceeds) {
  auto feed = std::make_shared<ExternalFeed>();
  const auto cfg = delta_config(
      fresh_dir(std::string("ms_delta_reckill_") + ft_point_name(GetParam())));

  std::int64_t total = 0;
  {
    rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
    RtRuntime runtime(&engine, cfg);
    ASSERT_TRUE(runtime.start().is_ok());
    wait_drained(engine, 100);
    ASSERT_TRUE(take_checkpoint(runtime, 0));  // full base
    wait_drained(engine, engine.sink_tuples() + 100);
    ASSERT_TRUE(take_checkpoint(runtime, 1));  // delta
    wait_drained(engine, engine.sink_tuples() + 100);
    runtime.simulate_crash();
    feed->paused.store(true);
    wait_quiescent(engine);
    total = feed->cursor.load();
    runtime.stop();
  }

  rt::RtEngine engine(delta_chain(feed), rt::RtConfig{});
  RtRuntime runtime(&engine, cfg);
  RtChaos chaos(&runtime);
  chaos.crash_on(GetParam());
  chaos.arm();
  const Status first = runtime.recover(nullptr);
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(chaos.kills(), 1);
  runtime.clear_crash();
  ASSERT_TRUE(runtime.recover(nullptr).is_ok());
  wait_quiescent(engine);
  runtime.stop();
  expect_sink_exact(engine, total);
}

INSTANTIATE_TEST_SUITE_P(RecoveryPhases, DeltaRecoveryKillTest,
                         ::testing::Values(FtPoint::kRecoveryPhase1,
                                           FtPoint::kRecoveryPhase2,
                                           FtPoint::kRecoveryPhase3,
                                           FtPoint::kRecoveryPhase4),
                         PointName());

}  // namespace
}  // namespace ms::ft
