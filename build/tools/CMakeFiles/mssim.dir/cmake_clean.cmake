file(REMOVE_RECURSE
  "CMakeFiles/mssim.dir/mssim.cc.o"
  "CMakeFiles/mssim.dir/mssim.cc.o.d"
  "mssim"
  "mssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
