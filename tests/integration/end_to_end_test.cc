// Cross-module scenarios: the three applications under the Meteor Shower
// schemes, correlated bursts from the failure model, and the headline
// qualitative claims of the paper (MS survives bursts the baseline cannot;
// async checkpointing hides the latency spike; application-aware
// checkpointing shrinks the checkpointed state).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apps/signalguru.h"
#include "apps/tmi.h"
#include "failure/burst.h"
#include "ft/baseline.h"
#include "ft/meteor_shower.h"

#include "../testing/test_ops.h"

namespace ms {
namespace {

using ms::testing::chain_graph;
using ms::testing::RecordingSink;
using ms::testing::small_cluster;

TEST(EndToEndTest, TmiUnderMsApWithCheckpointAndBurstRecovery) {
  sim::Simulation sim;
  core::ClusterParams cp;
  cp.network.num_nodes = 111;  // 55 app + 55 spare + storage
  core::Cluster cluster(&sim, cp);
  apps::TmiConfig cfg;
  cfg.window = SimTime::seconds(60);
  cfg.records_per_second = 10;
  core::Application app(&cluster, apps::build_tmi(cfg));
  app.deploy();
  ft::FtParams params;
  params.periodic = false;
  ft::MsScheme scheme(&app, params, ft::MsVariant::kSrcAp);
  scheme.attach();
  app.start();
  scheme.start();

  sim.run_until(SimTime::seconds(90));
  scheme.trigger_checkpoint();
  sim.run_until(SimTime::seconds(150));
  ASSERT_EQ(scheme.checkpoints().size(), 1u);
  const auto sink_before = app.sink_tuple_count();

  // Rack burst kills the whole application (55 nodes in one rack of 80).
  failure::FailureInjector injector(&cluster, &app);
  injector.fail_whole_application();

  std::vector<net::NodeId> spares;
  for (net::NodeId n = 55; n < 110; ++n) spares.push_back(n);
  bool recovered = false;
  scheme.recover_application(spares, [&](ft::RecoveryStats) {
    recovered = true;
  });
  sim.run_until(SimTime::seconds(400));
  ASSERT_TRUE(recovered);
  // The pipeline is alive again: sink keeps advancing past pre-failure.
  EXPECT_GT(app.sink_tuple_count(), sink_before);
}

TEST(EndToEndTest, BaselineDiesOnBurstMsSurvives) {
  // The paper's core motivation, as an executable statement.
  auto run_burst = [](bool use_ms) {
    sim::Simulation sim;
    core::Cluster cluster(&sim, small_cluster(10));
    core::Application app(&cluster, chain_graph(2, SimTime::millis(10)));
    app.deploy();
    ft::FtParams params;
    params.checkpoint_period = SimTime::seconds(2);
    std::unique_ptr<ft::MsScheme> ms;
    std::unique_ptr<ft::BaselineScheme> base;
    if (use_ms) {
      params.periodic = false;
      ms = std::make_unique<ft::MsScheme>(&app, params, ft::MsVariant::kSrcAp);
      ms->attach();
    } else {
      base = std::make_unique<ft::BaselineScheme>(&app, params);
      base->attach();
    }
    app.start();
    if (ms) {
      ms->start();
      sim.run_until(SimTime::seconds(3));
      ms->trigger_checkpoint();
    }
    sim.run_until(SimTime::seconds(6));
    // Burst: relay0 and relay1 die together.
    cluster.fail_node(app.hau(1).node());
    cluster.fail_node(app.hau(2).node());
    app.hau(1).on_node_failed();
    app.hau(2).on_node_failed();
    if (ms) {
      bool done = false;
      ms->recover_application({5, 6}, [&](ft::RecoveryStats) { done = true; });
      sim.run_until(SimTime::seconds(60));
      return done;
    }
    // Baseline: recovering HAU 2 requires HAU 1's in-memory preservation
    // buffer, which died with its node — unrecoverable (asserted by the
    // baseline test suite as a death test; here just report failure).
    return false;
  };
  EXPECT_TRUE(run_burst(/*use_ms=*/true));
  EXPECT_FALSE(run_burst(/*use_ms=*/false));
}

TEST(EndToEndTest, ApplicationAwareCheckpointsLessState) {
  // SignalGuru: checkpoint at a random instant (plain ap) vs. at the
  // aa-chosen instant; aa's checkpointed bytes are significantly smaller.
  auto checkpointed_bytes = [](ft::MsVariant variant) {
    sim::Simulation sim;
    core::ClusterParams cp;
    cp.network.num_nodes = 60;
    core::Cluster cluster(&sim, cp);
    apps::SgConfig cfg;
    cfg.frame_bytes = 64_KB;  // keep the test fast
    core::Application app(&cluster, apps::build_signalguru(cfg));
    app.deploy();
    ft::FtParams params;
    params.periodic = variant == ft::MsVariant::kSrcApAa;
    params.checkpoint_period = SimTime::seconds(45);
    params.profile_periods = 2;
    ft::MsScheme scheme(&app, params, variant);
    scheme.attach();
    app.start();
    scheme.start();
    if (variant == ft::MsVariant::kSrcApAa) {
      // Observation (1 period) + profiling (2) + two execution periods.
      sim.run_until(SimTime::seconds(45 * 5 + 30));
      const auto& ckpts = scheme.checkpoints();
      // Use the aa-triggered checkpoints (after the profiling pipeline).
      Bytes best = -1;
      for (const auto& c : ckpts) {
        if (c.initiated > SimTime::seconds(45 * 3)) {
          best = best < 0 ? c.total_declared
                          : std::min(best, c.total_declared);
        }
      }
      return best;
    }
    sim.run_until(SimTime::seconds(100));
    scheme.trigger_checkpoint();
    sim.run_until(SimTime::seconds(200));
    return scheme.checkpoints().empty()
               ? Bytes{-1}
               : scheme.checkpoints().front().total_declared;
  };
  const Bytes random_instant = checkpointed_bytes(ft::MsVariant::kSrcAp);
  const Bytes aa_instant = checkpointed_bytes(ft::MsVariant::kSrcApAa);
  ASSERT_GT(random_instant, 0);
  ASSERT_GT(aa_instant, 0);
  EXPECT_LT(aa_instant, random_instant);
}

TEST(EndToEndTest, AsyncCheckpointHidesLatencySpike) {
  // Fig. 15's qualitative claim: during a checkpoint, MS-src inflates
  // instantaneous latency far more than MS-src+ap.
  auto worst_latency_during_checkpoint = [](ft::MsVariant variant) {
    sim::Simulation sim;
    core::Cluster cluster(&sim, small_cluster(8));
    core::Application app(&cluster, chain_graph(2, SimTime::millis(10)));
    app.deploy();
    ft::FtParams params;
    params.periodic = false;
    ft::MsScheme scheme(&app, params, variant);
    scheme.attach();
    // Sizeable state so the sync pause is visible.
    static_cast<ms::testing::RelayOperator&>(app.hau(1).op())
        .set_extra_state_bytes(100_MB);
    static_cast<ms::testing::RelayOperator&>(app.hau(2).op())
        .set_extra_state_bytes(100_MB);
    app.start();
    scheme.start();
    sim.run_until(SimTime::seconds(2));
    SimTime worst = SimTime::zero();
    app.set_sink_probe([&](const core::Tuple& t, SimTime now) {
      worst = std::max(worst, now - t.event_time);
    });
    scheme.trigger_checkpoint();
    sim.run_until(SimTime::seconds(30));
    return worst;
  };
  const SimTime sync_worst =
      worst_latency_during_checkpoint(ft::MsVariant::kSrc);
  const SimTime async_worst =
      worst_latency_during_checkpoint(ft::MsVariant::kSrcAp);
  EXPECT_GT(sync_worst, async_worst * std::int64_t{3});
}

TEST(EndToEndTest, GeneratedBurstTraceDrivesAutoRecovery) {
  sim::Simulation sim;
  core::ClusterParams cp;
  cp.network.num_nodes = 20;
  core::Cluster cluster(&sim, cp);
  core::Application app(&cluster, chain_graph(3, SimTime::millis(10)));
  app.deploy();
  ft::FtParams params;
  params.periodic = true;
  params.checkpoint_period = SimTime::seconds(5);
  params.ping_period = SimTime::millis(500);
  ft::MsScheme scheme(&app, params, ft::MsVariant::kSrcAp);
  scheme.attach();
  scheme.enable_failure_detection({10, 11, 12, 13, 14, 15});
  app.start();
  scheme.start();

  // Inject a power burst at t=12 hitting every application node.
  failure::FailureEvent ev;
  ev.kind = failure::FailureEvent::Kind::kPowerBurst;
  ev.at = SimTime::seconds(12);
  ev.nodes = app.nodes_in_use();
  failure::FailureInjector injector(&cluster, &app);
  injector.schedule({ev});

  sim.run_until(SimTime::seconds(60));
  ASSERT_EQ(scheme.recoveries().size(), 1u);
  for (int i = 0; i < app.num_haus(); ++i) {
    EXPECT_FALSE(app.hau(i).failed()) << "HAU " << i;
  }
  // Still exactly-once at the sink: no duplicates, and only the
  // undispatched source batch may be missing.
  auto& sink = static_cast<RecordingSink&>(app.hau(4).op());
  std::vector<std::int64_t> sorted = sink.values;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_FALSE(sorted.empty());
  std::int64_t missing = sorted.front();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_NE(sorted[i], sorted[i - 1]);
    missing += sorted[i] - sorted[i - 1] - 1;
  }
  EXPECT_LE(missing, 10);
}

}  // namespace
}  // namespace ms
