#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace ms::net {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.nodes_per_rack = 2;
  cfg.nic_bandwidth = 125e6;  // 1 Gbps
  cfg.intra_rack_latency = SimTime::micros(100);
  cfg.inter_rack_latency = SimTime::micros(300);
  cfg.per_message_overhead = SimTime::micros(20);
  return cfg;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topo_(small_config()), net_(&sim_, &topo_) {}
  sim::Simulation sim_;
  Topology topo_;
  Network net_;
};

TEST_F(NetworkTest, UnloadedDeliveryTime) {
  SimTime delivered;
  // 125 KB at 125 MB/s = 1 ms serialization; intra-rack 100 us + 20 us sw.
  net_.send(0, 1, 125'000, MsgCategory::kData, [&] { delivered = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered,
            SimTime::micros(20) + SimTime::micros(100) + SimTime::millis(1));
}

TEST_F(NetworkTest, InterRackLatencyHigher) {
  SimTime intra, inter;
  net_.send(0, 1, 1000, MsgCategory::kData, [&] { intra = sim_.now(); });
  sim_.run();
  sim::Simulation sim2;
  Network net2(&sim2, &topo_);
  net2.send(0, 2, 1000, MsgCategory::kData, [&] { inter = sim2.now(); });
  sim2.run();
  EXPECT_EQ(inter - intra, SimTime::micros(200));
}

TEST_F(NetworkTest, SenderNicSerializesBackToBack) {
  std::vector<SimTime> deliveries;
  // Two 125 KB messages: second's tx starts after the first's 1 ms.
  net_.send(0, 1, 125'000, MsgCategory::kData,
            [&] { deliveries.push_back(sim_.now()); });
  net_.send(0, 1, 125'000, MsgCategory::kData,
            [&] { deliveries.push_back(sim_.now()); });
  sim_.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_GE(deliveries[1] - deliveries[0], SimTime::millis(1));
}

TEST_F(NetworkTest, ReceiverNicIsContended) {
  // Two senders to one receiver: the receiver clocks in 1 ms per message.
  std::vector<SimTime> deliveries;
  net_.send(0, 3, 125'000, MsgCategory::kData,
            [&] { deliveries.push_back(sim_.now()); });
  net_.send(1, 3, 125'000, MsgCategory::kData,
            [&] { deliveries.push_back(sim_.now()); });
  sim_.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_GE(deliveries[1] - deliveries[0], SimTime::millis(1));
}

TEST_F(NetworkTest, PerSenderFifoOrder) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net_.send(0, 1, 1000 * (5 - i), MsgCategory::kData,
              [&order, i] { order.push_back(i); });
  }
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(NetworkTest, DeadDestinationDropsAtDelivery) {
  bool delivered = false;
  bool dropped = false;
  net_.set_alive(1, false);
  net_.send(0, 1, 1000, MsgCategory::kData, [&] { delivered = true; },
            [&] { dropped = true; });
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
  EXPECT_EQ(net_.stats().dropped, 1);
}

TEST_F(NetworkTest, DeadSenderDropsImmediately) {
  bool delivered = false;
  bool dropped = false;
  net_.set_alive(0, false);
  net_.send(0, 1, 1000, MsgCategory::kData, [&] { delivered = true; },
            [&] { dropped = true; });
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(NetworkTest, DestinationDiesInFlight) {
  bool delivered = false;
  net_.send(0, 1, 125'000, MsgCategory::kData, [&] { delivered = true; });
  sim_.schedule_at(SimTime::micros(50), [&] { net_.set_alive(1, false); });
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().dropped, 1);
}

TEST_F(NetworkTest, StatsPerCategory) {
  net_.send(0, 1, 500, MsgCategory::kToken, [] {});
  net_.send(0, 1, 700, MsgCategory::kToken, [] {});
  net_.send(0, 1, 900, MsgCategory::kCheckpoint, [] {});
  sim_.run();
  EXPECT_EQ(net_.stats().messages[static_cast<std::size_t>(MsgCategory::kToken)], 2);
  EXPECT_EQ(net_.stats().bytes_of(MsgCategory::kToken), 1200);
  EXPECT_EQ(net_.stats().bytes_of(MsgCategory::kCheckpoint), 900);
  EXPECT_EQ(net_.stats().total_bytes(), 2100);
}

TEST_F(NetworkTest, ZeroByteMessageStillHasLatency) {
  SimTime delivered;
  net_.send(0, 1, 0, MsgCategory::kControl, [&] { delivered = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered, SimTime::micros(120));
}

TEST(TopologyTest, RackAssignment) {
  ClusterConfig cfg;
  cfg.num_nodes = 170;
  cfg.nodes_per_rack = 80;
  Topology topo(cfg);
  EXPECT_EQ(topo.num_racks(), 3);
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(79), 0);
  EXPECT_EQ(topo.rack_of(80), 1);
  EXPECT_EQ(topo.rack_of(169), 2);
  EXPECT_TRUE(topo.same_rack(0, 79));
  EXPECT_FALSE(topo.same_rack(79, 80));
  EXPECT_EQ(topo.nodes_in_rack(2).size(), 10u);
}

TEST(MsgCategoryTest, Names) {
  EXPECT_STREQ(msg_category_name(MsgCategory::kData), "data");
  EXPECT_STREQ(msg_category_name(MsgCategory::kToken), "token");
  EXPECT_STREQ(msg_category_name(MsgCategory::kPreserve), "preserve");
}

}  // namespace
}  // namespace ms::net
