// Fig. 15 — Instantaneous latency during a checkpoint: the per-tuple
// processing latency around one application checkpoint, for MS-src,
// MS-src+ap and MS-src+ap+aa. MS-src's synchronous pauses spike the latency
// by multiples; the asynchronous variants stay near the no-checkpoint level.
#include <algorithm>
#include <cstdio>

#include "common/metrics.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace ms;
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  const SimTime warm = quick ? SimTime::seconds(90) : SimTime::seconds(300);
  const SimTime horizon = SimTime::seconds(180);
  const int tmi_minutes = quick ? 2 : 10;

  std::printf("=== Fig. 15: instantaneous latency during a checkpoint ===\n");
  for (const AppKind app : kAllApps) {
    std::printf("\n(%s) — checkpoint triggered at t=0\n", app_name(app));
    std::printf("%-10s %-14s %-14s %-14s\n", "t (s)", "MS-src", "MS-src+ap",
                "MS-src+ap+aa");
    constexpr int kBuckets = 18;
    double series[3][kBuckets] = {};
    int counts[3][kBuckets] = {};
    double baseline_level[3] = {};
    for (int v = 0; v < 3; ++v) {
      const Scheme scheme = v == 0   ? Scheme::kMsSrc
                            : v == 1 ? Scheme::kMsSrcAp
                                     : Scheme::kMsSrcApAa;
      // For +aa, arrange its pipeline so the execution period's checkpoint
      // lands right at `warm` — approximate by regular trigger for kSrc/ap
      // and the first aa checkpoint for aa.
      Experiment exp(app, v == 2 ? Scheme::kMsSrcApAa : scheme,
                     v == 2 ? 1 : 0, warm + horizon, 0x5eedULL, tmi_minutes);
      exp.app().start();
      exp.ms()->start();
      auto& sim = exp.sim();
      SimTime t0 = warm;
      // Pre-checkpoint latency level (for the "no checkpointing" reference).
      LatencyHistogram before;
      exp.app().set_latency_listener([&](SimTime, SimTime latency) {
        before.record(latency);
      });
      if (v == 2) {
        // aa: let the pipeline choose its own instant.
        const SimTime deadline = warm + horizon * std::int64_t{3};
        while (exp.ms()->checkpoints().empty() &&
               exp.ms()->aa().phase() != ms::ft::AaController::Phase::kExecution &&
               sim.now() < deadline) {
          sim.run_until(sim.now() + SimTime::seconds(5));
        }
        // Record from the start of the execution phase; the first aa
        // checkpoint will land inside the horizon.
        t0 = sim.now();
      } else {
        sim.run_until(warm);
      }
      baseline_level[v] = before.count() > 0
                              ? before.percentile(50).to_seconds()
                              : 0.0;
      exp.app().set_latency_listener([&](SimTime now, SimTime latency) {
        const double rel = (now - t0).to_seconds();
        const int bucket = static_cast<int>(rel / 10.0);
        if (bucket >= 0 && bucket < kBuckets) {
          series[v][bucket] += latency.to_seconds();
          counts[v][bucket] += 1;
        }
      });
      if (v != 2) exp.ms()->trigger_checkpoint();
      sim.run_until(t0 + horizon);
    }
    for (int b = 0; b < kBuckets; ++b) {
      std::printf("%-10d", b * 10);
      for (int v = 0; v < 3; ++v) {
        if (counts[v][b] > 0) {
          std::printf("%-14s", fmt(series[v][b] / counts[v][b], 2).c_str());
        } else {
          std::printf("%-14s", "-");
        }
      }
      std::printf("\n");
    }
    std::printf("pre-checkpoint median latency (s): MS-src %.2f, MS-src+ap "
                "%.2f, MS-src+ap+aa %.2f\n",
                baseline_level[0], baseline_level[1], baseline_level[2]);
  }
  return 0;
}
