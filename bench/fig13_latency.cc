// Fig. 13 — Mean end-to-end latency of the four schemes for 0..8 checkpoints
// within a 10-minute window, normalized to the baseline with zero
// checkpoints, for the three applications.
#include <cstdio>
#include <string>

#include "common_case.h"

int main(int argc, char** argv) {
  using namespace ms::bench;
  const bool quick = quick_mode(argc, argv);
  std::printf("=== Fig. 13: normalized latency vs. number of checkpoints in "
              "%s ===\n",
              quick ? "2 minutes (--quick)" : "10 minutes");
  JsonResultWriter json;
  for (const AppKind app : kAllApps) {
    const CommonCaseSweep sweep = run_common_case_sweep(app, quick);
    print_panel(app, sweep, Metric::kLatency);
    for (const auto& [scheme, by_ckpt] : sweep.cells) {
      for (const auto& [k, cell] : by_ckpt) {
        json.add(std::string("fig13.") + app_name(app) + "." +
                     scheme_name(scheme) + "/" + std::to_string(k),
                 /*iters=*/1, /*ns_per_op=*/cell.latency_ms * 1e6,
                 /*tuples_per_sec=*/0.0);
      }
    }
    const double src_gain =
        1.0 - sweep.cells.at(Scheme::kMsSrc).at(0).latency_ms /
                  sweep.baseline_zero_latency_ms;
    const double aa_gain_at3 =
        1.0 - sweep.cells.at(Scheme::kMsSrcApAa).at(3).latency_ms /
                  sweep.cells.at(Scheme::kBaseline).at(3).latency_ms;
    std::printf("latency reduction @0 ckpt (src): %.0f%%   "
                "MS-src+ap+aa vs baseline @3 ckpt: %.0f%%\n",
                src_gain * 100.0, aa_gain_at3 * 100.0);
  }
  const std::string path = json_path(argc, argv);
  if (!path.empty()) {
    if (!json.write(path)) {
      std::fprintf(stderr, "fig13_latency: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("json written to %s\n", path.c_str());
  }
  return 0;
}
