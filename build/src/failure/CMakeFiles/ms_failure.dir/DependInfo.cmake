
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/afn100.cc" "src/failure/CMakeFiles/ms_failure.dir/afn100.cc.o" "gcc" "src/failure/CMakeFiles/ms_failure.dir/afn100.cc.o.d"
  "/root/repo/src/failure/burst.cc" "src/failure/CMakeFiles/ms_failure.dir/burst.cc.o" "gcc" "src/failure/CMakeFiles/ms_failure.dir/burst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ms_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/statesize/CMakeFiles/ms_statesize.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
