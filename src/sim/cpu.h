// Multi-core CPU model for a simulated node.
//
// Jobs are pure CPU occupancy: submitted with a duration, started FIFO as
// cores free up, completion delivered as a simulation event. An HAU keeps at
// most one processing job in flight (it is single-threaded, like an SPE
// thread); an asynchronous checkpoint helper submits its serialization work
// as an independent job, which is how it ends up on the second core — the
// mechanism behind the paper's parallel, asynchronous checkpointing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/units.h"
#include "sim/simulation.h"

namespace ms::sim {

class CpuServer {
 public:
  CpuServer(Simulation* sim, int cores);

  /// Submit a CPU job. `done` runs (as a sim event) when the job finishes.
  /// Jobs start FIFO; a job occupies exactly one core for `cpu_time`.
  void submit(SimTime cpu_time, std::function<void()> done);

  /// Abandon everything (node failure): queued jobs are dropped and running
  /// jobs' completions are suppressed.
  void reset();

  int cores() const { return cores_; }
  int busy_cores() const { return busy_; }
  std::size_t queued_jobs() const { return queue_.size(); }

  /// Total CPU time executed to completion (diagnostics / utilization).
  SimTime busy_time() const { return busy_time_; }

 private:
  struct Job {
    SimTime cpu_time;
    std::function<void()> done;
  };

  void try_start();
  void finish(std::uint64_t generation, SimTime cpu_time,
              std::function<void()> done);

  Simulation* sim_;
  int cores_;
  int busy_ = 0;
  std::uint64_t generation_ = 0;  // bumped on reset() to orphan completions
  SimTime busy_time_ = SimTime::zero();
  std::deque<Job> queue_;
};

}  // namespace ms::sim
