file(REMOVE_RECURSE
  "CMakeFiles/ms_failure.dir/afn100.cc.o"
  "CMakeFiles/ms_failure.dir/afn100.cc.o.d"
  "CMakeFiles/ms_failure.dir/burst.cc.o"
  "CMakeFiles/ms_failure.dir/burst.cc.o.d"
  "libms_failure.a"
  "libms_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
