#include "failure/afn100.h"

namespace ms::failure {

std::vector<IncidentClass> google_network_incidents(int cluster_nodes) {
  const double n = static_cast<double>(cluster_nodes);
  return {
      // One network rewiring with ~5 % of nodes down.
      {"network rewiring", 1.0, 0.05 * n, 1.0},
      // Twenty rack failures, 80 nodes disconnected each time.
      {"rack failure", 20.0, 80.0, 1.0},
      // Five rack instabilities, 80 nodes affected, 50 % packet loss —
      // still one failure per affected node in the paper's accounting.
      {"rack unsteadiness", 5.0, 80.0, 1.0},
      // Fifteen router failures/reloads, conservatively 10 % of nodes.
      {"router failure/reload", 15.0, 0.10 * n, 1.0},
      // Eight network maintenances, conservatively 10 % of nodes.
      {"network maintenance", 8.0, 0.10 * n, 1.0},
  };
}

double afn100(const std::vector<IncidentClass>& incidents, int cluster_nodes) {
  double failures = 0.0;
  for (const auto& i : incidents) failures += i.node_failures_per_year();
  return failures / static_cast<double>(cluster_nodes) * 100.0;
}

std::vector<TableRow> table1() {
  return {
      {"Network", 300.0, 320.0, 250.0, 250.0, true, true},
      {"Environment", 100.0, 150.0, 0.0, 0.0, false, true},
      {"Ooops", 100.0, 100.0, 40.0, 40.0, true, true},
      {"Disk", 1.7, 8.6, 2.0, 6.0, true, false},
      {"Memory", 1.3, 1.3, 0.0, 0.0, false, false},
  };
}

FailureModel FailureModel::google() {
  FailureModel m;
  // Sum of Table I midpoints: ~310 + 125 + 100 + ~5 + 1.3.
  m.total_afn100 = 541.3;
  m.burst_fraction = 0.10;
  return m;
}

FailureModel FailureModel::abe() {
  FailureModel m;
  m.total_afn100 = 250.0 + 40.0 + 4.0;  // network + ooops + disk midpoint
  m.burst_fraction = 0.10;
  return m;
}

}  // namespace ms::failure
