# Empty dependencies file for fig11_alert_mode.
# This may be replaced when dependencies are built.
