// Cluster topology description: nodes grouped into racks, NIC and latency
// parameters. Defaults approximate the paper's testbed — nodes with two
// 2.3 GHz cores and 1 Gbps Ethernet — at data-center rack sizes (80
// blade servers per rack, per the paper's description of Google's DC).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace ms::net {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

struct ClusterConfig {
  int num_nodes = 56;
  int nodes_per_rack = 80;

  /// NIC bandwidth, bytes/second, full duplex (1 Gbps default).
  double nic_bandwidth = 125e6;

  SimTime intra_rack_latency = SimTime::micros(100);
  SimTime inter_rack_latency = SimTime::micros(300);

  /// Fixed per-message software overhead (syscall, TCP stack).
  SimTime per_message_overhead = SimTime::micros(20);
};

class Topology {
 public:
  explicit Topology(const ClusterConfig& config);

  int num_nodes() const { return config_.num_nodes; }
  int rack_of(NodeId n) const;
  bool same_rack(NodeId a, NodeId b) const { return rack_of(a) == rack_of(b); }
  int num_racks() const { return num_racks_; }
  std::vector<NodeId> nodes_in_rack(int rack) const;

  SimTime latency(NodeId from, NodeId to) const {
    return same_rack(from, to) ? config_.intra_rack_latency
                               : config_.inter_rack_latency;
  }

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
  int num_racks_;
};

}  // namespace ms::net
