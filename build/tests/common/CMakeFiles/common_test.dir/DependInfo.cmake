
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/ascii_chart_test.cc" "tests/common/CMakeFiles/common_test.dir/ascii_chart_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/ascii_chart_test.cc.o.d"
  "/root/repo/tests/common/buffer_pool_test.cc" "tests/common/CMakeFiles/common_test.dir/buffer_pool_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/buffer_pool_test.cc.o.d"
  "/root/repo/tests/common/metrics_test.cc" "tests/common/CMakeFiles/common_test.dir/metrics_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/metrics_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/common/CMakeFiles/common_test.dir/rng_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/rng_test.cc.o.d"
  "/root/repo/tests/common/serialize_test.cc" "tests/common/CMakeFiles/common_test.dir/serialize_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/serialize_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/common/CMakeFiles/common_test.dir/status_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/status_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/common/CMakeFiles/common_test.dir/thread_pool_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/thread_pool_test.cc.o.d"
  "/root/repo/tests/common/units_test.cc" "tests/common/CMakeFiles/common_test.dir/units_test.cc.o" "gcc" "tests/common/CMakeFiles/common_test.dir/units_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/ms_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ms_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/ms_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ms_rt.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/ms_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/statesize/CMakeFiles/ms_statesize.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ms_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
