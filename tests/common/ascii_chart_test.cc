// ASCII chart rendering (bench/ascii_chart): plotting invariants rather
// than golden strings — dimensions, scale anchoring, glyph placement,
// legends, stacked-bar proportions.
#include "../../bench/ascii_chart.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ms::bench {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(LineChartTest, HasTitleAxisAndLegend) {
  const std::string chart = render_line_chart(
      "my title", {0, 1, 2, 3}, {Series{"alpha", {0, 1, 2, 3}}}, 40, 8,
      "xlab", "ylab");
  const auto lines = lines_of(chart);
  EXPECT_EQ(lines.front(), "my title");
  EXPECT_EQ(lines[1], "ylab");
  EXPECT_NE(chart.find("xlab"), std::string::npos);
  EXPECT_NE(chart.find("* alpha"), std::string::npos);
  // 8 plot rows + title + ylabel + axis + xlabels + legend.
  EXPECT_EQ(lines.size(), 8u + 5u);
}

TEST(LineChartTest, MonotoneSeriesRisesLeftToRight) {
  const std::string chart = render_line_chart(
      "", {0, 1, 2, 3, 4}, {Series{"s", {0, 1, 2, 3, 4}}}, 30, 10);
  const auto lines = lines_of(chart);
  // The first plot row (max) has its glyph to the right of the last plot
  // row's (min) glyph.
  const auto top_pos = lines[1].rfind('*');
  const auto bottom_pos = lines[10].find('*');
  ASSERT_NE(top_pos, std::string::npos);
  ASSERT_NE(bottom_pos, std::string::npos);
  EXPECT_GT(top_pos, bottom_pos);
}

TEST(LineChartTest, TwoSeriesGetDistinctGlyphs) {
  const std::string chart = render_line_chart(
      "", {0, 1}, {Series{"a", {1, 1}}, Series{"b", {2, 0}}}, 20, 6);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("* a"), std::string::npos);
  EXPECT_NE(chart.find("o b"), std::string::npos);
}

TEST(LineChartTest, YAxisAnchoredAtZero) {
  const std::string chart =
      render_line_chart("", {0, 1}, {Series{"s", {50, 100}}}, 20, 6);
  // The bottom label is 0.00 even though the series' minimum is 50.
  EXPECT_NE(chart.find("0.00"), std::string::npos);
  EXPECT_NE(chart.find("100.00"), std::string::npos);
}

TEST(LineChartTest, LargeValuesUseSuffixes) {
  const std::string chart = render_line_chart(
      "", {0, 1}, {Series{"s", {0, 2.5e6}}}, 20, 6);
  EXPECT_NE(chart.find("2.5M"), std::string::npos);
}

TEST(StackedBarsTest, ProportionalSegments) {
  const std::string chart = render_stacked_bars(
      "bars",
      {Bar{"big", {{"x", 30.0}, {"y", 10.0}}}, Bar{"small", {{"x", 10.0}}}},
      40, "s");
  const auto lines = lines_of(chart);
  ASSERT_GE(lines.size(), 3u);
  // The big bar's '#' run is ~3x the small bar's.
  const auto count = [](const std::string& s, char c) {
    return std::count(s.begin(), s.end(), c);
  };
  EXPECT_NEAR(static_cast<double>(count(lines[1], '#')),
              3.0 * static_cast<double>(count(lines[2], '#')), 2.0);
  // Segment legend present.
  EXPECT_NE(chart.find("# x"), std::string::npos);
  EXPECT_NE(chart.find("= y"), std::string::npos);
  // Totals annotated with the unit.
  EXPECT_NE(chart.find("40.00s"), std::string::npos);
}

TEST(StackedBarsTest, LabelsAligned) {
  const std::string chart = render_stacked_bars(
      "", {Bar{"aa", {{"x", 1.0}}}, Bar{"bbbb", {{"x", 1.0}}}}, 20, "");
  const auto lines = lines_of(chart);
  const auto bar1 = lines[1].find('|');
  const auto bar2 = lines[2].find('|');
  EXPECT_EQ(bar1, bar2);
}

}  // namespace
}  // namespace ms::bench
