// Failure detection (paper Sec. III-A): the controller pings the source
// nodes; every other node is monitored by its upstream neighbours; a node
// can also be reported when its connection drops. Detection triggers
// whole-application recovery from the spare pool.
#include <gtest/gtest.h>

#include "../testing/test_ops.h"
#include "ft/meteor_shower.h"

namespace ms::ft {
namespace {

using ms::testing::chain_graph;
using ms::testing::RecordingSink;
using ms::testing::small_cluster;

class FailureDetectionTest : public ::testing::Test {
 protected:
  void build() {
    cluster_ = std::make_unique<core::Cluster>(&sim_, small_cluster(10));
    app_ = std::make_unique<core::Application>(
        cluster_.get(), chain_graph(2, SimTime::millis(10)));
    app_->deploy();
    FtParams p;
    p.periodic = true;
    p.checkpoint_period = SimTime::seconds(3);
    p.ping_period = SimTime::millis(500);
    scheme_ = std::make_unique<MsScheme>(app_.get(), p, MsVariant::kSrcAp);
    scheme_->attach();
    scheme_->enable_failure_detection({5, 6, 7, 8, 9});
    app_->start();
    scheme_->start();
  }

  sim::Simulation sim_;
  std::unique_ptr<core::Cluster> cluster_;
  std::unique_ptr<core::Application> app_;
  std::unique_ptr<MsScheme> scheme_;
};

TEST_F(FailureDetectionTest, SourceNodeFailureDetectedByControllerPing) {
  build();
  sim_.run_until(SimTime::seconds(5));
  cluster_->fail_node(app_->hau(0).node());
  app_->hau(0).on_node_failed();
  sim_.run_until(SimTime::seconds(20));
  ASSERT_EQ(scheme_->recoveries().size(), 1u);
  EXPECT_FALSE(app_->hau(0).failed());
  // Detection latency: within a couple of ping periods.
  EXPECT_LT(scheme_->recoveries().front().started, SimTime::seconds(7));
}

TEST_F(FailureDetectionTest, MidChainNodeFailureDetectedByUpstreamMonitor) {
  build();
  sim_.run_until(SimTime::seconds(5));
  // Kill the middle relay's node only: the controller does not ping it, so
  // detection must come from relay0's (its upstream's) monitor.
  core::Hau& relay1 = app_->hau(2);
  cluster_->fail_node(relay1.node());
  relay1.on_node_failed();
  sim_.run_until(SimTime::seconds(20));
  ASSERT_EQ(scheme_->recoveries().size(), 1u);
  for (int i = 0; i < app_->num_haus(); ++i) {
    EXPECT_FALSE(app_->hau(i).failed()) << "HAU " << i;
  }
}

TEST_F(FailureDetectionTest, SinkNodeFailureDetectedToo) {
  build();
  sim_.run_until(SimTime::seconds(5));
  core::Hau& sink = app_->hau(3);
  cluster_->fail_node(sink.node());
  sink.on_node_failed();
  sim_.run_until(SimTime::seconds(20));
  ASSERT_EQ(scheme_->recoveries().size(), 1u);
  EXPECT_FALSE(app_->hau(3).failed());
}

TEST_F(FailureDetectionTest, NoFalsePositivesOnHealthyRun) {
  build();
  sim_.run_until(SimTime::seconds(30));
  EXPECT_TRUE(scheme_->recoveries().empty());
  for (int i = 0; i < app_->num_haus(); ++i) {
    EXPECT_FALSE(app_->hau(i).failed());
  }
}

TEST_F(FailureDetectionTest, SlowButAliveNodeIsExoneratedNotRecovered) {
  build();
  // Pongs from the mid-chain relay's node arrive 1.2s late for a while: with
  // a 500ms ping period that is 2 consecutive missed reply deadlines — enough
  // to raise suspicion, one short of a verdict — before the delayed pongs
  // land and exonerate it.
  const net::NodeId slow = app_->hau(1).node();
  auto* fp = MetricsRegistry::global().counter("ft.detector.false_positive");
  const std::int64_t fp_before = fp->value();
  sim_.run_until(SimTime::seconds(4));
  scheme_->set_heartbeat_delay(slow, SimTime::millis(1200),
                               SimTime::seconds(10));
  sim_.run_until(SimTime::seconds(30));
  EXPECT_TRUE(scheme_->recoveries().empty());
  for (int i = 0; i < app_->num_haus(); ++i) {
    EXPECT_FALSE(app_->hau(i).failed()) << "HAU " << i;
  }
  EXPECT_GE(fp->value() - fp_before, 1);
  EXPECT_EQ(scheme_->detector().state(slow),
            FailureDetector::UnitState::kAlive);
}

TEST_F(FailureDetectionTest, StreamContinuesExactlyOnceAfterAutoRecovery) {
  build();
  sim_.run_until(SimTime::seconds(6));
  cluster_->fail_node(app_->hau(1).node());
  app_->hau(1).on_node_failed();
  sim_.run_until(SimTime::seconds(60));
  ASSERT_EQ(scheme_->recoveries().size(), 1u);
  auto& sink = static_cast<RecordingSink&>(app_->hau(3).op());
  std::vector<std::int64_t> sorted = sink.values;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_GT(sorted.size(), 1000u);
  std::int64_t missing = sorted.front();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_NE(sorted[i], sorted[i - 1]) << "duplicate";
    missing += sorted[i] - sorted[i - 1] - 1;
  }
  EXPECT_LE(missing, 10);
}

}  // namespace
}  // namespace ms::ft
