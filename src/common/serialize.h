// Binary serialization used for checkpointed operator state and for tuples
// crossing the (simulated or real) wire. Little-endian, length-prefixed,
// no schema evolution — checkpoints never outlive the binary that wrote them.
//
// The writer is on the checkpoint hot path (every epoch serializes every
// operator's state), so appends go through an explicit amortized-growth
// policy and callers that know the final size can pre-reserve via the
// size-hint constructor or adopt a pooled buffer whose capacity survives
// across epochs.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ms {

class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Pre-reserves `size_hint` bytes so a serialize of known (or remembered)
  /// size appends without reallocating.
  explicit BinaryWriter(std::size_t size_hint) { buf_.reserve(size_hint); }

  /// Adopts `buf` as backing storage: contents are discarded, capacity is
  /// kept. Pairs with a buffer pool so repeated checkpoints reuse one
  /// allocation instead of growing a fresh vector every epoch.
  explicit BinaryWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T> && (!std::is_pointer_v<T>)
  void write(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    ensure(sizeof(T));
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void write_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    ensure(n);
    buf_.insert(buf_.end(), p, p + n);
  }

  void write_string(const std::string& s) {
    ensure(sizeof(std::uint64_t) + s.size());
    write<std::uint64_t>(s.size());
    write_bytes(s.data(), s.size());
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      ensure(sizeof(std::uint64_t) + v.size() * sizeof(T));
      write<std::uint64_t>(v.size());
      write_bytes(v.data(), v.size() * sizeof(T));
    } else {
      write<std::uint64_t>(v.size());
      for (const auto& e : v) e.serialize(*this);
    }
  }

  void reserve(std::size_t total) { buf_.reserve(total); }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return buf_.capacity(); }

 private:
  /// Amortized growth: never let a large append land on a capacity cliff one
  /// element at a time — jump straight to max(need, 2×capacity).
  void ensure(std::size_t extra) {
    const std::size_t need = buf_.size() + extra;
    if (need > buf_.capacity()) {
      buf_.reserve(std::max(need, buf_.capacity() * 2));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T> && (!std::is_pointer_v<T>)
  T read() {
    MS_CHECK_MSG(sizeof(T) <= remaining(), "BinaryReader: out of data");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void read_bytes(void* out, std::size_t n) {
    // `n <= remaining()` rather than `pos_ + n <= size_`: the latter wraps
    // for adversarial n near SIZE_MAX and passes the check.
    MS_CHECK_MSG(n <= remaining(), "BinaryReader: out of data");
    if (n == 0) return;  // empty vectors hand us out == nullptr; memcpy
                         // with a null pointer is UB even for n == 0
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    MS_CHECK_MSG(n <= remaining(), "BinaryReader: bad string length");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    std::vector<T> v;
    if constexpr (std::is_trivially_copyable_v<T>) {
      // Divide instead of multiplying: `n * sizeof(T)` wraps for adversarial
      // n, making a huge claimed length look in-bounds.
      MS_CHECK_MSG(n <= remaining() / sizeof(T),
                   "BinaryReader: bad vector length");
      v.resize(static_cast<std::size_t>(n));
      read_bytes(v.data(), static_cast<std::size_t>(n) * sizeof(T));
    } else {
      // Each element consumes at least one byte of input, so `remaining()`
      // bounds any honest length; don't let a corrupt header drive a
      // multi-gigabyte reserve before the first element read fails.
      MS_CHECK_MSG(n <= remaining(), "BinaryReader: bad vector length");
      v.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) v.push_back(T::deserialize(*this));
    }
    return v;
  }

  bool at_end() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ms
