file(REMOVE_RECURSE
  "CMakeFiles/fig5_state_size.dir/fig5_state_size.cc.o"
  "CMakeFiles/fig5_state_size.dir/fig5_state_size.cc.o.d"
  "fig5_state_size"
  "fig5_state_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_state_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
