#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ms {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  EXPECT_NE(c1.next(), c2.next());
  Rng parent2(7);
  Rng c1_again = parent2.fork(0);
  c1.reseed(0);  // scrub
  Rng c1_fresh = Rng(7).fork(0);
  EXPECT_EQ(c1_fresh.next(), c1_again.next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformU64Bounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(19);
  for (const double mean : {0.5, 8.0, 200.0}) {
    double sum = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(23);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

}  // namespace
}  // namespace ms
