#include "ft/aa_controller.h"

#include <algorithm>

#include "common/log.h"
#include "common/status.h"
#include "common/trace.h"

namespace ms::ft {

void AaController::trace_instant(SimTime now, const char* name) {
  if (trace_ == nullptr) return;
  trace_->instant(now, trace_track::kAppPid, trace_track::kControllerTid, name,
                  "aa");
}

void AaController::begin(SimTime now) {
  (void)now;
  phase_ = Phase::kObservation;
  observed_.clear();
  dynamic_.clear();
  profiles_.clear();
  readings_.clear();
  alert_ = false;
  checkpointed_this_period_ = false;
}

void AaController::report_observation(int hau_id, double min_size,
                                      double avg_size) {
  observed_[hau_id] = {min_size, avg_size};
}

void AaController::finish_observation(SimTime now) {
  MS_CHECK(phase_ == Phase::kObservation);
  dynamic_.clear();
  for (const auto& [hau, mm] : observed_) {
    const auto& [mn, avg] = mm;
    if (avg > 0.0 && mn < params_.dynamic_threshold * avg) {
      dynamic_.push_back(hau);
    }
  }
  phase_ = Phase::kProfiling;
  profiling_started_ = now;
  trace_instant(now, "aa-observation-done");
  MS_LOG_INFO("aa", "observation done: %zu dynamic HAUs", dynamic_.size());
}

bool AaController::is_dynamic(int hau_id) const {
  return std::find(dynamic_.begin(), dynamic_.end(), hau_id) != dynamic_.end();
}

void AaController::report_turning_point(int hau_id, SimTime t, double size,
                                        double icr) {
  if (phase_ == Phase::kProfiling) {
    auto& poly = profiles_[hau_id];
    if (poly.empty() || t > poly.points().back().first) {
      poly.add_point(t, size);
    }
    return;
  }
  if (phase_ == Phase::kExecution && alert_) {
    auto& r = readings_[hau_id];
    r.size = size;
    r.icr = icr;
    r.valid = true;
    maybe_fire(t);
  }
}

void AaController::finish_profiling(SimTime now) {
  MS_CHECK(phase_ == Phase::kProfiling);
  phase_ = Phase::kExecution;
  trace_instant(now, "aa-profiling-done");

  // Sum the per-HAU polylines at the union of their vertex times.
  std::vector<SimTime> times;
  for (const auto& [hau, poly] : profiles_) {
    (void)hau;
    for (const auto& [t, s] : poly.points()) {
      (void)s;
      times.push_back(t);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  statesize::PolylineSignal aggregate;
  for (const SimTime t : times) {
    double sum = 0.0;
    for (const auto& [hau, poly] : profiles_) {
      (void)hau;
      sum += poly.value_at(t);
    }
    aggregate.add_point(t, sum);
  }
  if (aggregate.empty()) {
    // No turning points: either nothing is dynamic, or the dynamic state's
    // cycle is longer than the profiling window (monotone growth all the
    // way through — TMI's 10-minute pools under a shorter profile). Fall
    // back to the observation statistics: arm alert mode below the
    // threshold fraction of the dynamic HAUs' average state, so the
    // half-drop notification at the eventual batch discard still triggers
    // a well-timed checkpoint.
    smin_ = 0.0;
    smax_ = 0.0;
    for (const int hau : dynamic_) {
      const auto it = observed_.find(hau);
      if (it != observed_.end()) {
        smax_ += it->second.second * params_.dynamic_threshold;
      }
    }
    if (smax_ > 0.0) {
      MS_LOG_INFO("aa",
                  "no turning points in profiling; observation fallback "
                  "smax=%.1f",
                  smax_);
    } else {
      MS_LOG_WARN("aa", "profiling produced no turning points");
    }
    return;
  }

  // Per-period minima of the aggregate over the profiling window.
  const SimTime period = params_.profile_period > SimTime::zero()
                             ? params_.profile_period
                             : params_.checkpoint_period;
  const SimTime t0 = profiling_started_;
  std::vector<double> minima;
  for (SimTime p = t0; p + period <= now; p += period) {
    minima.push_back(aggregate.minimum_in(p, p + period).second);
  }
  if (minima.empty()) {
    minima.push_back(aggregate.minimum_in(t0, now).second);
  }
  smin_ = *std::min_element(minima.begin(), minima.end());
  smax_ = *std::max_element(minima.begin(), minima.end());
  // Relaxation factor alpha = (smax - smin)/smin, bounded below by 20 %.
  // The paper's formula degenerates when the state empties completely
  // (smin = 0 makes alpha undefined and smax = 0 disarms alert mode); a
  // small fraction of the observed peak keeps the threshold meaningful.
  double peak = 0.0;
  for (const auto& [t, v] : aggregate.points()) {
    (void)t;
    peak = std::max(peak, v);
  }
  const double relaxed = smin_ * (1.0 + params_.relaxation_min);
  smax_ = std::max({smax_, relaxed, 0.05 * peak});
  MS_LOG_INFO("aa", "profiling done: smin=%.1f smax=%.1f", smin_, smax_);
}

void AaController::force_execution(std::vector<int> dynamic_haus, double smax,
                                   double smin) {
  phase_ = Phase::kExecution;
  dynamic_ = std::move(dynamic_haus);
  smax_ = smax;
  smin_ = smin;
  readings_.clear();
  alert_ = false;
  checkpointed_this_period_ = false;
}

double AaController::aggregate_size() const {
  double sum = 0.0;
  for (const auto& [hau, r] : readings_) {
    (void)hau;
    if (r.valid) sum += r.size;
  }
  return sum;
}

double AaController::aggregate_icr() const {
  double sum = 0.0;
  for (const auto& [hau, r] : readings_) {
    (void)hau;
    if (r.valid) sum += r.icr;
  }
  return sum;
}

void AaController::on_period_start(SimTime now) {
  (void)now;
  if (phase_ != Phase::kExecution) return;
  checkpointed_this_period_ = false;
  alert_ = false;
  if (hooks_.set_alert_reporting) hooks_.set_alert_reporting(false);
  for (auto& [hau, r] : readings_) {
    (void)hau;
    r.valid = false;
  }
  if (!dynamic_.empty() && hooks_.query_dynamic_haus) {
    outstanding_queries_ = static_cast<int>(dynamic_.size());
    hooks_.query_dynamic_haus();
  }
}

void AaController::on_period_end(SimTime now) {
  if (phase_ != Phase::kExecution) return;
  if (!checkpointed_this_period_) {
    // The aggregate never dipped below smax (or never turned): checkpoint
    // anyway at the end of the period.
    checkpointed_this_period_ = true;
    alert_ = false;
    if (hooks_.set_alert_reporting) hooks_.set_alert_reporting(false);
    trace_instant(now, "aa-forced-trigger");
    if (hooks_.trigger_checkpoint) hooks_.trigger_checkpoint();
  }
}

void AaController::on_half_drop_notification(int hau_id, SimTime now) {
  (void)hau_id;
  (void)now;
  if (phase_ != Phase::kExecution || alert_ || checkpointed_this_period_) return;
  if (!dynamic_.empty() && hooks_.query_dynamic_haus) {
    outstanding_queries_ = static_cast<int>(dynamic_.size());
    hooks_.query_dynamic_haus();
  }
}

void AaController::on_query_response(int hau_id, SimTime now, double size,
                                     double icr) {
  if (phase_ != Phase::kExecution) return;
  auto& r = readings_[hau_id];
  r.size = size;
  r.icr = icr;
  r.valid = true;
  if (outstanding_queries_ > 0 && --outstanding_queries_ == 0) {
    evaluate_alert_entry(now);
  }
}

void AaController::evaluate_alert_entry(SimTime now) {
  if (alert_ || checkpointed_this_period_) return;
  const double total = aggregate_size();
  if (total < smax_) {
    alert_ = true;
    if (hooks_.set_alert_reporting) hooks_.set_alert_reporting(true);
    trace_instant(now, "aa-alert-on");
    MS_LOG_DEBUG("aa", "alert mode entered (total=%.1f < smax=%.1f)", total,
                 smax_);
    // The sizes just collected may already foresee an increase.
    maybe_fire(now);
  }
}

void AaController::maybe_fire(SimTime now) {
  if (!alert_ || checkpointed_this_period_) return;
  // Fire at the first foreseen increase of the aggregate state size.
  bool any_valid = false;
  for (const auto& [hau, r] : readings_) {
    (void)hau;
    any_valid = any_valid || r.valid;
  }
  if (!any_valid) return;
  if (aggregate_icr() > 0.0) {
    checkpointed_this_period_ = true;
    alert_ = false;
    if (hooks_.set_alert_reporting) hooks_.set_alert_reporting(false);
    trace_instant(now, "aa-trigger");
    if (hooks_.trigger_checkpoint) hooks_.trigger_checkpoint();
  }
}

}  // namespace ms::ft
