#include "failure/afn100.h"

#include <gtest/gtest.h>

namespace ms::failure {
namespace {

TEST(Afn100Test, PaperNetworkExampleTotals7640) {
  // Paper §II-B1: "there are 7640 network failures in total:
  // AFN100 = 7640/2400 * 100 > 300".
  const auto incidents = google_network_incidents(2400);
  double total = 0.0;
  for (const auto& i : incidents) total += i.node_failures_per_year();
  EXPECT_DOUBLE_EQ(total, 7640.0);
  const double a = afn100(incidents, 2400);
  EXPECT_NEAR(a, 318.33, 0.01);
  EXPECT_GT(a, 300.0);
}

TEST(Afn100Test, IncidentBreakdownMatchesKeynote) {
  const auto incidents = google_network_incidents(2400);
  ASSERT_EQ(incidents.size(), 5u);
  // One rewiring hits 5% of 2400 nodes = 120.
  EXPECT_DOUBLE_EQ(incidents[0].node_failures_per_year(), 120.0);
  // Twenty rack failures x 80 nodes = 1600.
  EXPECT_DOUBLE_EQ(incidents[1].node_failures_per_year(), 1600.0);
  // Five instabilities x 80 = 400.
  EXPECT_DOUBLE_EQ(incidents[2].node_failures_per_year(), 400.0);
  // Fifteen router events x 240 = 3600.
  EXPECT_DOUBLE_EQ(incidents[3].node_failures_per_year(), 3600.0);
  // Eight maintenances x 240 = 1920.
  EXPECT_DOUBLE_EQ(incidents[4].node_failures_per_year(), 1920.0);
}

TEST(Afn100Test, Table1RowsMatchPaper) {
  const auto rows = table1();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].source, "Network");
  EXPECT_GE(rows[0].google_lo, 300.0);
  EXPECT_DOUBLE_EQ(rows[0].abe_lo, 250.0);
  EXPECT_TRUE(rows[0].major_burst_cause);
  EXPECT_EQ(rows[1].source, "Environment");
  EXPECT_FALSE(rows[1].abe_available);
  EXPECT_EQ(rows[3].source, "Disk");
  EXPECT_DOUBLE_EQ(rows[3].google_lo, 1.7);
  EXPECT_DOUBLE_EQ(rows[3].google_hi, 8.6);
  EXPECT_FALSE(rows[3].major_burst_cause);
  EXPECT_EQ(rows[4].source, "Memory");
  EXPECT_DOUBLE_EQ(rows[4].google_lo, 1.3);
}

TEST(Afn100Test, GoogleModelRatesSane) {
  const FailureModel m = FailureModel::google();
  EXPECT_GT(m.total_afn100, 500.0);
  EXPECT_DOUBLE_EQ(m.burst_fraction, 0.10);
  // Per-node failure rate: ~5.4 failures/node/year.
  const double per_year = m.per_node_rate_per_second() * 365.25 * 24 * 3600;
  EXPECT_NEAR(per_year, m.total_afn100 / 100.0, 1e-9);
}

TEST(Afn100Test, AbeLowerThanGoogle) {
  EXPECT_LT(FailureModel::abe().total_afn100,
            FailureModel::google().total_afn100);
}

}  // namespace
}  // namespace ms::failure
