#include "sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

namespace ms::sim {
namespace {

TEST(CpuServerTest, SingleJobCompletesAfterDuration) {
  Simulation sim;
  CpuServer cpu(&sim, 1);
  SimTime done;
  cpu.submit(SimTime::millis(10), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, SimTime::millis(10));
}

TEST(CpuServerTest, SingleCoreSerializesJobs) {
  Simulation sim;
  CpuServer cpu(&sim, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(SimTime::millis(10), [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], SimTime::millis(10));
  EXPECT_EQ(done[1], SimTime::millis(20));
  EXPECT_EQ(done[2], SimTime::millis(30));
}

TEST(CpuServerTest, TwoCoresRunTwoJobsInParallel) {
  Simulation sim;
  CpuServer cpu(&sim, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(SimTime::millis(10), [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], SimTime::millis(10));
  EXPECT_EQ(done[1], SimTime::millis(10));
  EXPECT_EQ(done[2], SimTime::millis(20));
  EXPECT_EQ(done[3], SimTime::millis(20));
}

TEST(CpuServerTest, ZeroDurationJobRunsImmediately) {
  Simulation sim;
  CpuServer cpu(&sim, 1);
  bool ran = false;
  cpu.submit(SimTime::zero(), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(CpuServerTest, ResetDropsQueuedAndRunningJobs) {
  Simulation sim;
  CpuServer cpu(&sim, 1);
  int completed = 0;
  cpu.submit(SimTime::millis(10), [&] { ++completed; });
  cpu.submit(SimTime::millis(10), [&] { ++completed; });
  sim.schedule_at(SimTime::millis(5), [&] { cpu.reset(); });
  sim.run();
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(cpu.busy_cores(), 0);
  EXPECT_EQ(cpu.queued_jobs(), 0u);
}

TEST(CpuServerTest, UsableAfterReset) {
  Simulation sim;
  CpuServer cpu(&sim, 1);
  cpu.submit(SimTime::millis(10), [] {});
  sim.schedule_at(SimTime::millis(1), [&] { cpu.reset(); });
  sim.run();
  bool ran = false;
  cpu.submit(SimTime::millis(2), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(CpuServerTest, BusyTimeAccumulates) {
  Simulation sim;
  CpuServer cpu(&sim, 2);
  cpu.submit(SimTime::millis(10), [] {});
  cpu.submit(SimTime::millis(20), [] {});
  sim.run();
  EXPECT_EQ(cpu.busy_time(), SimTime::millis(30));
}

TEST(CpuServerTest, JobsSubmittedFromCompletionRun) {
  Simulation sim;
  CpuServer cpu(&sim, 1);
  SimTime second_done;
  cpu.submit(SimTime::millis(5), [&] {
    cpu.submit(SimTime::millis(5), [&] { second_done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second_done, SimTime::millis(10));
}

}  // namespace
}  // namespace ms::sim
