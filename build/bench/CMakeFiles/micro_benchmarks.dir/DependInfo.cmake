
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_benchmarks.cc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cc.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ms_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ms_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ms_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/ms_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/ms_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/statesize/CMakeFiles/ms_statesize.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ms_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
