// Baseline fault tolerance: the state of the art the paper compares against
// (§II-B3) — a stand-in for the checkpoint-based schemes of Hwang'05/'07,
// LSS and SGuard.
//
// - Every HAU checkpoints independently and periodically; the first
//   checkpoint fires at a random phase within the period.
// - Checkpoints are synchronous: the HAU suspends stream processing until
//   its state has been serialized and written to the shared storage node.
// - Input preservation: every HAU retains its output tuples in a bounded
//   in-memory buffer (default 50 MB); on overflow the buffer is dumped to
//   the local disk. A downstream checkpoint acknowledgment truncates the
//   preserved prefix.
// - Recovery is per-HAU: the failed HAU restarts from its own most recent
//   checkpoint and upstream neighbours resend preserved tuples past the
//   checkpoint's input positions. Only single-HAU failures are recoverable —
//   a correlated burst that also kills an upstream neighbour loses its
//   in-memory preservation buffer, which is exactly the weakness Meteor
//   Shower addresses (demonstrated by tests and the burst example).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/application.h"
#include "ft/params.h"
#include "ft/probe.h"
#include "ft/sim_runtime.h"
#include "ft/stats.h"
#include "ft/tracing.h"

namespace ms::ft {

class BaselineHauFt;

class BaselineScheme {
 public:
  BaselineScheme(core::Application* app, const FtParams& params);

  /// Install per-HAU attachments. Call between deploy() and start().
  void attach();

  const FtParams& params() const { return params_; }
  core::Application& app() { return *app_; }

  /// Completed individual checkpoints (chronological).
  const std::vector<HauCheckpointReport>& reports() const { return reports_; }
  /// Preserved-tuple bytes written to local disks so far (spills).
  Bytes spilled_bytes() const { return spilled_bytes_; }
  /// Per-tuple preservation CPU seconds charged so far.
  double preservation_cpu_seconds() const { return preservation_cpu_seconds_; }

  /// Recover a single failed HAU onto `replacement`. `done` receives the
  /// phase breakdown.
  ///
  /// Degrades instead of aborting: a missing checkpoint restarts the HAU
  /// from its initial state (upstream buffers resend everything they still
  /// preserve); a dead upstream neighbour — the correlated-failure case the
  /// baseline fundamentally cannot handle — skips that port's resend, losing
  /// its tuples. Both are recorded in last_recovery_error().
  void recover_hau(int hau_id, net::NodeId replacement,
                   std::function<void(RecoveryStats)> done);

  /// Most recent degradation hit by recover_hau; OK if the last recovery
  /// was clean.
  const Status& last_recovery_error() const { return last_recovery_error_; }

  std::string checkpoint_key(int hau_id) const;

  /// Subscribe to protocol instrumentation points (same spine as MsScheme:
  /// serialize/write/done per individual checkpoint, recovery phases with
  /// the recovering HAU's id).
  void add_probe(FtProbe probe) { probes_.push_back(std::move(probe)); }

  /// Fold probe points into trace spans on per-HAU tracks (ft/tracing.h).
  void set_trace(TraceRecorder* trace);

  /// Redirect metric recording (defaults to MetricsRegistry::global()).
  void set_metrics(MetricsRegistry* metrics);

 private:
  friend class BaselineHauFt;

  void emit_probe(FtPoint point, int hau, std::uint64_t id) {
    for (const auto& probe : probes_) probe(point, hau, id);
  }
  void bind_metrics();

  core::Application* app_;
  FtParams params_;
  // Controller-side view of the execution (clock, unit liveness). Baseline
  // installs no epoch hooks: every checkpoint is a per-HAU affair, there is
  // no application-wide epoch for a coordinator to drive.
  std::unique_ptr<SimRuntime> runtime_;
  Rng rng_;
  std::uint64_t instance_;  // storage-namespace discriminator
  std::vector<HauCheckpointReport> reports_;
  Status last_recovery_error_;
  Bytes spilled_bytes_ = 0;
  double preservation_cpu_seconds_ = 0.0;
  std::vector<BaselineHauFt*> fts_;  // borrowed; owned by the HAUs
  std::vector<FtProbe> probes_;
  std::unique_ptr<ProbeTracer> tracer_;
  std::uint64_t recovery_seq_ = 0;

  MetricsRegistry* metrics_;
  Counter* m_ckpt_started_;
  Counter* m_ckpt_completed_;
  Counter* m_ckpt_abandoned_;
  HistogramMetric* m_ckpt_other_;
  HistogramMetric* m_ckpt_disk_io_;
  HistogramMetric* m_ckpt_total_;
  Counter* m_recovery_started_;
  Counter* m_recovery_completed_;
  HistogramMetric* m_recovery_total_;
};

/// Per-HAU attachment implementing input preservation and the periodic
/// synchronous checkpoint.
class BaselineHauFt final : public core::HauFt {
 public:
  BaselineHauFt(BaselineScheme* scheme, core::Hau& hau);

  void on_start(core::Hau& hau) override;
  void emit(core::Hau& hau, int out_port, core::Tuple tuple) override;
  void on_token_at_head(core::Hau& hau, int in_port,
                        const core::Token& token) override;

  /// Downstream checkpoint acknowledgment: preserved tuples on `out_port`
  /// with edge_seq <= `upto_seq` may be discarded.
  void handle_ack(int out_port, std::uint64_t upto_seq);

  /// Recovery: resend preserved tuples on `out_port` with edge_seq >
  /// `after_seq`. Charges a disk read for any spilled portion first.
  void resend_preserved(core::Hau& hau, int out_port, std::uint64_t after_seq,
                        std::function<void()> done);

  Bytes preserved_mem_bytes() const { return mem_bytes_; }
  std::size_t preserved_count() const;

  /// Trigger one synchronous checkpoint now (also used by tests).
  void checkpoint_now(core::Hau& hau);

 private:
  void schedule_next_checkpoint(core::Hau& hau, SimTime delay);

  struct Preserved {
    core::Tuple tuple;  // edge_seq set
    bool spilled = false;
  };

  BaselineScheme* scheme_;
  std::vector<std::deque<Preserved>> per_out_;
  Bytes mem_bytes_ = 0;       // unspilled preserved bytes
  bool checkpointing_ = false;
  bool stalled_on_spill_ = false;
  std::uint64_t next_checkpoint_id_ = 1;
};

}  // namespace ms::ft
