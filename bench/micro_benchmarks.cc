// Microbenchmarks (google-benchmark) for the substrate primitives: event
// queue throughput, network message setup, serialization, state-size
// estimation, turning-point detection, and the application kernels.
#include <benchmark/benchmark.h>

#include "apps/kernels/blob_count.h"
#include "apps/kernels/kmeans.h"
#include "apps/kernels/svm.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "statesize/state_size.h"
#include "statesize/turning_point.h"

namespace {

using namespace ms;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(SimTime::micros(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_NetworkSend(benchmark::State& state) {
  net::ClusterConfig cfg;
  cfg.num_nodes = 8;
  for (auto _ : state) {
    sim::Simulation sim;
    net::Topology topo(cfg);
    net::Network net(&sim, &topo);
    for (int i = 0; i < 1000; ++i) {
      net.send(i % 4, 4 + i % 4, 1024, net::MsgCategory::kData, [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkSend);

void BM_SerializeDoubles(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    BinaryWriter w;
    w.write_vector(data);
    BinaryReader r(w.data());
    auto out = r.read_vector<double>();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_SerializeDoubles)->Arg(64)->Arg(4096)->Arg(65536);

void BM_StateSizeSampling(benchmark::State& state) {
  std::vector<std::vector<double>> pool(
      static_cast<std::size_t>(state.range(0)), std::vector<double>(3, 1.0));
  for (auto _ : state) {
    const Bytes est = statesize::sample_container(
        pool, [](const std::vector<double>& v) {
          return static_cast<Bytes>(v.size() * 8 + 24);
        });
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_StateSizeSampling)->Arg(100)->Arg(100000);

void BM_TurningPointDetector(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(100.0 + 50.0 * std::sin(i * 0.1) + rng.uniform());
  }
  for (auto _ : state) {
    statesize::TurningPointDetector det(1e-6);
    int tps = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (det.add_sample(SimTime::seconds(static_cast<int>(i)), samples[i])) {
        ++tps;
      }
    }
    benchmark::DoNotOptimize(tps);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TurningPointDetector);

void BM_KMeans(benchmark::State& state) {
  Rng gen(11);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < state.range(0); ++i) {
    points.push_back({gen.uniform(0.0, 100.0), gen.uniform(0.0, 100.0)});
  }
  for (auto _ : state) {
    Rng rng(13);
    const auto r = apps::kmeans(points, 4, rng, 12);
    benchmark::DoNotOptimize(r.inertia);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans)->Arg(256)->Arg(4096);

void BM_BlobCount(benchmark::State& state) {
  Rng rng(17);
  auto grid = apps::OccupancyGrid::blank(48, 32);
  for (int i = 0; i < 12; ++i) {
    apps::paint_blob(grid, 2 + static_cast<int>(rng.uniform_u64(44)),
                     2 + static_cast<int>(rng.uniform_u64(28)), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::count_blobs(grid));
  }
}
BENCHMARK(BM_BlobCount);

void BM_SvmUpdate(benchmark::State& state) {
  Rng rng(19);
  apps::LinearSvm svm(4);
  std::vector<double> x{0.1, 0.2, 0.3, 0.4};
  for (auto _ : state) {
    x[0] = rng.uniform();
    svm.update(x, x[0] > 0.5 ? 1 : -1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvmUpdate);

}  // namespace

BENCHMARK_MAIN();
