// Chaos fault injection for the real-threads runtime.
//
// The sim-side ChaosHarness (failure/chaos.h) scripts faults against precise
// protocol states inside the deterministic simulation. RtChaos is its
// real-threads sibling: it subscribes to RtRuntime's FtPoint probe spine and
// pulls the (simulated) plug — RtRuntime::simulate_crash() — the moment the
// protocol reaches a scripted point. Probes fire from worker, helper, and
// timer threads, so trigger matching is mutex-guarded; the crash flag itself
// is an atomic the runtime checks at every durability boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "ft/probe.h"
#include "ft/rt_runtime.h"

namespace ms::failure {

class RtChaos {
 public:
  explicit RtChaos(ft::RtRuntime* runtime);

  // --- scripting; call before arm() ---
  /// Crash the process the `occurrence`-th time `point` fires for `hau_id`
  /// (-1 matches any unit, including application-wide probes).
  void crash_on(ft::FtPoint point, int hau_id = -1, int occurrence = 1);

  /// Suppress operator `op`'s liveness heartbeats for `delay` when `point`
  /// fires: the operator keeps running but looks silent to the failure
  /// detector, exercising the suspicion/exoneration path without a crash.
  void heartbeat_delay_on(ft::FtPoint point, int op, SimTime delay,
                          int hau_id = -1, int occurrence = 1);

  /// Run `fn` the `occurrence`-th time `point` fires — the scheduling hook
  /// for disk faults: the callback typically arms a DiskFaultInjector
  /// (disk_fault.h) so the *next* durable write or read at that protocol
  /// state tears, flips or dies. Runs outside the trigger mutex, on the
  /// probing thread.
  void action_on(ft::FtPoint point, std::function<void()> fn, int hau_id = -1,
                 int occurrence = 1);

  /// Subscribe to the runtime's probe spine. Call once, before start() or
  /// recover(); other probe subscribers coexist.
  void arm();

  /// Crashes injected by fired triggers so far.
  int kills() const;
  /// Human-readable timeline of every injected fault.
  std::vector<std::string> log() const;

 private:
  struct Trigger {
    ft::FtPoint point = ft::FtPoint::kTokenAlignStart;
    int hau_filter = -1;
    int occurrence = 1;
    int seen = 0;
    bool fired = false;
    enum class Action { kCrash, kHbDelay, kCustom };
    Action action = Action::kCrash;
    int hb_op = -1;
    SimTime hb_delay = SimTime::zero();
    std::function<void()> fn;
  };

  void on_probe(ft::FtPoint point, int hau, std::uint64_t id);

  ft::RtRuntime* runtime_;
  mutable std::mutex mu_;
  std::vector<Trigger> triggers_;
  bool armed_ = false;
  int kills_ = 0;
  std::vector<std::string> log_;
};

}  // namespace ms::failure
