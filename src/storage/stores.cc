#include "storage/stores.h"

#include <algorithm>
#include <numeric>
#include <type_traits>
#include <utility>

namespace ms::storage {

void LocalStore::put(const std::string& key, Object object,
                     std::function<void()> done) {
  const Bytes size = object.declared_size;
  data_[key] = std::move(object);
  disk_->write(size, std::move(done));
}

void LocalStore::get(const std::string& key,
                     std::function<void(Result<Object>)> done) {
  const auto it = data_.find(key);
  if (it == data_.end()) {
    sim_->schedule_after(SimTime::zero(), [key, done = std::move(done)] {
      done(Status::not_found("local object: " + key));
    });
    return;
  }
  Object obj = it->second;
  const Bytes charge = obj.read_charge > 0 ? obj.read_charge : obj.declared_size;
  disk_->read(charge, [obj = std::move(obj), done = std::move(done)] {
    done(std::move(obj));
  });
}

Bytes LocalStore::stored_bytes() const {
  return std::accumulate(data_.begin(), data_.end(), Bytes{0},
                         [](Bytes acc, const auto& kv) {
                           return acc + kv.second.declared_size;
                         });
}

SharedStorage::SharedStorage(net::Network* network, net::NodeId node,
                             const DiskConfig& disk,
                             std::optional<DiskConfig> log_disk)
    : network_(network),
      node_(node),
      disk_(&network->simulation(), disk),
      log_disk_(&network->simulation(), log_disk.value_or(disk)) {
  MS_CHECK(network != nullptr);
}

void SharedStorage::send_chunked(net::NodeId from, net::NodeId to, Bytes size,
                                 net::MsgCategory category,
                                 std::function<void()> deliver,
                                 std::function<void()> on_dropped) {
  if (size <= kStreamChunk) {
    network_->send(from, to, size, category, std::move(deliver),
                   std::move(on_dropped));
    return;
  }
  // Stream the transfer one chunk in flight at a time (a TCP-window-like
  // pacing): between chunks both NICs are free, so concurrent flows -- data
  // tuples on the sender's NIC, preserved-tuple appends on the storage
  // node's NIC -- interleave instead of stalling behind the bulk transfer.
  struct Stream {
    net::Network* network;
    net::NodeId from;
    net::NodeId to;
    Bytes remaining;
    net::MsgCategory category;
    std::function<void()> deliver;
    std::function<void()> on_dropped;

    void send_next(const std::shared_ptr<Stream>& self) {
      const Bytes chunk = std::min(remaining, kStreamChunk);
      remaining -= chunk;
      network->send(
          from, to, chunk, category,
          [self] {
            if (self->remaining > 0) {
              self->send_next(self);
            } else if (self->deliver) {
              self->deliver();
            }
          },
          [self] {
            if (self->on_dropped) self->on_dropped();
          });
    }
  };
  auto stream = std::make_shared<Stream>(
      Stream{network_, from, to, size, category, std::move(deliver),
             std::move(on_dropped)});
  stream->send_next(stream);
}

namespace {

/// Run `attempt` up to `retry.max_attempts` times. Transient failures back
/// off exponentially before the next try; definitive results (success,
/// kNotFound) propagate immediately. `R` is Status or Result<Object>.
template <typename R>
void run_with_retry(sim::Simulation* sim, RetryPolicy retry,
                    std::function<void(std::function<void(R)>)> attempt,
                    std::function<void(R)> done) {
  struct State {
    sim::Simulation* sim;
    RetryPolicy retry;
    int attempts_made = 0;
    SimTime backoff;
    std::function<void(std::function<void(R)>)> attempt;
    std::function<void(R)> done;
    // Captures only a weak self-reference: the strong refs live in the
    // in-flight attempt callback and the backoff timer, so an operation
    // whose callback the network drops (e.g. the client node died
    // mid-transfer) is freed instead of leaking through a run -> State
    // cycle.
    std::function<void()> run;
  };
  auto st = std::make_shared<State>();
  st->sim = sim;
  st->retry = retry;
  st->backoff = retry.initial_backoff;
  st->attempt = std::move(attempt);
  st->done = std::move(done);
  st->run = [w = std::weak_ptr<State>(st)] {
    auto st = w.lock();
    if (!st) return;
    st->attempt([st](R r) {
      // An unreliable network can complete one attempt twice (a duplicated
      // response) or deliver a straggler after the operation already
      // finished; completions are single-shot.
      if (!st->done) return;
      ++st->attempts_made;
      Status status;
      if constexpr (std::is_same_v<R, Status>) {
        status = r;
      } else {
        status = r.status();
      }
      if (RetryPolicy::transient(status) &&
          st->attempts_made < st->retry.max_attempts) {
        const SimTime delay = st->backoff;
        st->backoff = st->backoff * st->retry.backoff_multiplier;
        st->sim->schedule_after(delay, [st] {
          if (st->run) st->run();
        });
        return;
      }
      auto finish = std::move(st->done);
      st->run = nullptr;
      finish(std::move(r));
    });
  };
  st->run();
}

}  // namespace

void SharedStorage::set_trace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    trace_->set_track_name(trace_track::kStoragePid, 0, "shared-storage");
  }
}

std::function<void(Status)> SharedStorage::trace_op(
    const char* op, const std::string& key, Bytes size,
    std::function<void(Status)> done) {
  if (trace_ == nullptr) return done;
  const SimTime start = network_->simulation().now();
  const std::uint64_t id = next_op_id_++;
  return [this, start, id, name = std::string(op) + " " + key, size,
          done = std::move(done)](Status st) mutable {
    const SimTime now = network_->simulation().now();
    trace_->complete(start, now - start, trace_track::kStoragePid, 0, name,
                     "storage", id,
                     {{"bytes", static_cast<std::int64_t>(size)},
                      {"ok", st.is_ok() ? 1 : 0}});
    done(std::move(st));
  };
}

std::function<void(Result<Object>)> SharedStorage::trace_read(
    const char* op, const std::string& key,
    std::function<void(Result<Object>)> done) {
  if (trace_ == nullptr) return done;
  const SimTime start = network_->simulation().now();
  const std::uint64_t id = next_op_id_++;
  return [this, start, id, name = std::string(op) + " " + key,
          done = std::move(done)](Result<Object> r) mutable {
    const SimTime now = network_->simulation().now();
    Bytes bytes = 0;
    if (r.is_ok()) {
      bytes = r.value().read_charge > 0 ? r.value().read_charge
                                        : r.value().declared_size;
    }
    trace_->complete(start, now - start, trace_track::kStoragePid, 0, name,
                     "storage", id,
                     {{"bytes", static_cast<std::int64_t>(bytes)},
                      {"ok", r.is_ok() ? 1 : 0}});
    done(std::move(r));
  };
}

void SharedStorage::put(net::NodeId client, const std::string& key,
                        Object object, std::function<void(Status)> done,
                        RetryPolicy retry) {
  done = trace_op("put", key, object.declared_size, std::move(done));
  if (retry.max_attempts <= 1) {
    put_once(client, key, std::move(object), std::move(done));
    return;
  }
  run_with_retry<Status>(
      &network_->simulation(), retry,
      [this, client, key, object = std::move(object)](
          std::function<void(Status)> cb) {
        put_once(client, key, object, std::move(cb));
      },
      std::move(done));
}

void SharedStorage::put_once(net::NodeId client, const std::string& key,
                             Object object, std::function<void(Status)> done) {
  const Bytes size = object.declared_size;
  send_chunked(
      client, node_, size + kRequestSize, net::MsgCategory::kCheckpoint,
      [this, client, key, object = std::move(object),
       done = std::move(done)]() mutable {
        if (!available_) {
          reply_unavailable(client, std::move(done));
          return;
        }
        const Bytes n = object.declared_size;
        data_[key] = std::move(object);
        disk_.write(n, [this, client, done = std::move(done)]() mutable {
          // The write is durable either way; a lost ack must still complete
          // the client's operation (as a retryable error, since the client
          // cannot tell a lost ack from a lost request). Puts are idempotent,
          // so the retried request simply overwrites.
          auto d = std::make_shared<std::function<void(Status)>>(std::move(done));
          network_->send(node_, client, kRequestSize, net::MsgCategory::kControl,
                         [d] { (*d)(Status::ok()); },
                         [d] { (*d)(Status::unavailable("ack lost")); });
        });
      },
      /*on_dropped=*/[done] { done(Status::unavailable("storage unreachable")); });
}

void SharedStorage::append(net::NodeId client, const std::string& key,
                           Bytes size, std::vector<std::uint8_t> bytes,
                           std::function<void(Status)> done,
                           RetryPolicy retry) {
  done = trace_op("append", key, size, std::move(done));
  if (retry.max_attempts <= 1) {
    append_once(client, key, size, std::move(bytes), std::move(done));
    return;
  }
  run_with_retry<Status>(
      &network_->simulation(), retry,
      [this, client, key, size,
       bytes = std::move(bytes)](std::function<void(Status)> cb) {
        append_once(client, key, size, bytes, std::move(cb));
      },
      std::move(done));
}

void SharedStorage::append_once(net::NodeId client, const std::string& key,
                                Bytes size, std::vector<std::uint8_t> bytes,
                                std::function<void(Status)> done) {
  send_chunked(
      client, node_, size + kRequestSize, net::MsgCategory::kPreserve,
      [this, client, key, size, bytes = std::move(bytes),
       done = std::move(done)]() mutable {
        if (!available_) {
          reply_unavailable(client, std::move(done));
          return;
        }
        Object& obj = data_[key];
        obj.declared_size += size;
        obj.blob.insert(obj.blob.end(), bytes.begin(), bytes.end());
        log_disk_.write(size, [this, client, done = std::move(done)]() mutable {
          auto d = std::make_shared<std::function<void(Status)>>(std::move(done));
          network_->send(node_, client, kRequestSize, net::MsgCategory::kControl,
                         [d] { (*d)(Status::ok()); },
                         [d] { (*d)(Status::unavailable("ack lost")); });
        });
      },
      /*on_dropped=*/[done] { done(Status::unavailable("storage unreachable")); });
}

void SharedStorage::get(net::NodeId client, const std::string& key,
                        std::function<void(Result<Object>)> done,
                        RetryPolicy retry) {
  done = trace_read("get", key, std::move(done));
  if (retry.max_attempts <= 1) {
    get_once(client, key, std::move(done));
    return;
  }
  run_with_retry<Result<Object>>(
      &network_->simulation(), retry,
      [this, client, key](std::function<void(Result<Object>)> cb) {
        get_once(client, key, std::move(cb));
      },
      std::move(done));
}

void SharedStorage::get_once(net::NodeId client, const std::string& key,
                             std::function<void(Result<Object>)> done) {
  network_->send(
      client, node_, kRequestSize, net::MsgCategory::kControl,
      [this, client, key, done = std::move(done)]() mutable {
        if (!available_) {
          reply_unavailable(client, std::move(done));
          return;
        }
        const auto it = data_.find(key);
        if (it == data_.end()) {
          auto d = std::make_shared<std::function<void(Result<Object>)>>(
              std::move(done));
          network_->send(node_, client, kRequestSize, net::MsgCategory::kControl,
                         [key, d] {
                           (*d)(Status::not_found("shared object: " + key));
                         },
                         [d] { (*d)(Status::unavailable("ack lost")); });
          return;
        }
        Object obj = it->second;
        const Bytes charge =
            obj.read_charge > 0 ? obj.read_charge : obj.declared_size;
        disk_.read(charge, [this, client, charge, obj = std::move(obj),
                            done = std::move(done)]() mutable {
          send_chunked(
              node_, client, charge + kRequestSize,
              net::MsgCategory::kCheckpoint,
              [obj = std::move(obj), done = std::move(done)]() mutable {
                done(std::move(obj));
              },
              /*on_dropped=*/
              [done] { done(Status::unavailable("client unreachable")); });
        });
      },
      /*on_dropped=*/[done] { done(Status::unavailable("storage unreachable")); });
}

void SharedStorage::get_range(net::NodeId client, const std::string& key,
                              Bytes size,
                              std::function<void(Result<Object>)> done,
                              RetryPolicy retry) {
  done = trace_read("get_range", key, std::move(done));
  if (retry.max_attempts <= 1) {
    get_range_once(client, key, size, std::move(done));
    return;
  }
  run_with_retry<Result<Object>>(
      &network_->simulation(), retry,
      [this, client, key, size](std::function<void(Result<Object>)> cb) {
        get_range_once(client, key, size, std::move(cb));
      },
      std::move(done));
}

void SharedStorage::get_range_once(net::NodeId client, const std::string& key,
                                   Bytes size,
                                   std::function<void(Result<Object>)> done) {
  network_->send(
      client, node_, kRequestSize, net::MsgCategory::kControl,
      [this, client, key, size, done = std::move(done)]() mutable {
        if (!available_) {
          reply_unavailable(client, std::move(done));
          return;
        }
        const auto it = data_.find(key);
        if (it == data_.end()) {
          auto d = std::make_shared<std::function<void(Result<Object>)>>(
              std::move(done));
          network_->send(node_, client, kRequestSize, net::MsgCategory::kControl,
                         [key, d] {
                           (*d)(Status::not_found("shared object: " + key));
                         },
                         [d] { (*d)(Status::unavailable("ack lost")); });
          return;
        }
        Object obj = it->second;  // handle shared; charge only `size` bytes
        const Bytes charged = std::min(size, obj.declared_size);
        log_disk_.read(charged, [this, client, charged, obj = std::move(obj),
                             done = std::move(done)]() mutable {
          send_chunked(
              node_, client, charged + kRequestSize,
              net::MsgCategory::kReplay,
              [obj = std::move(obj), done = std::move(done)]() mutable {
                done(std::move(obj));
              },
              /*on_dropped=*/
              [done] { done(Status::unavailable("client unreachable")); });
        });
      },
      /*on_dropped=*/[done] { done(Status::unavailable("storage unreachable")); });
}

void SharedStorage::register_object(const std::string& key, Object object) {
  data_[key] = std::move(object);
}

void SharedStorage::resize(const std::string& key, Bytes new_declared_size) {
  const auto it = data_.find(key);
  if (it != data_.end()) it->second.declared_size = new_declared_size;
}

void SharedStorage::erase(net::NodeId client, const std::string& key,
                          std::function<void()> done) {
  network_->send(client, node_, kRequestSize, net::MsgCategory::kControl,
                 [this, key, done = std::move(done)] {
                   data_.erase(key);
                   if (done) done();
                 });
}

Bytes SharedStorage::size_of(const std::string& key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second.declared_size;
}

Bytes SharedStorage::stored_bytes() const {
  return std::accumulate(data_.begin(), data_.end(), Bytes{0},
                         [](Bytes acc, const auto& kv) {
                           return acc + kv.second.declared_size;
                         });
}

}  // namespace ms::storage
