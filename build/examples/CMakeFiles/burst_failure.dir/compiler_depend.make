# Empty compiler generated dependencies file for burst_failure.
# This may be replaced when dependencies are built.
