#include "core/cluster.h"

namespace ms::core {

Cluster::Cluster(sim::Simulation* sim, const ClusterParams& params)
    : sim_(sim), params_(params) {
  MS_CHECK(sim != nullptr);
  MS_CHECK_MSG(params.network.num_nodes >= 2,
               "need at least one compute node plus the storage node");
  topo_ = std::make_unique<net::Topology>(params.network);
  network_ = std::make_unique<net::Network>(sim_, topo_.get());
  shared_ = std::make_unique<storage::SharedStorage>(
      network_.get(), storage_node(), params.shared_disk,
      params.shared_log_disk);
  nodes_.resize(static_cast<std::size_t>(topo_->num_nodes()));
  for (auto& n : nodes_) {
    n.cpu = std::make_unique<sim::CpuServer>(sim_, params.cores_per_node);
    n.disk = std::make_unique<storage::Disk>(sim_, params.local_disk);
    n.local_store = std::make_unique<storage::LocalStore>(sim_, n.disk.get());
    n.alive = true;
  }
}

Cluster::Node& Cluster::node(net::NodeId id) {
  MS_CHECK(id >= 0 && id < num_nodes());
  return nodes_[static_cast<std::size_t>(id)];
}

bool Cluster::node_alive(net::NodeId id) const {
  MS_CHECK(id >= 0 && id < num_nodes());
  return nodes_[static_cast<std::size_t>(id)].alive;
}

void Cluster::fail_node(net::NodeId id) {
  auto& n = node(id);
  if (!n.alive) return;
  n.alive = false;
  network_->set_alive(id, false);
  n.cpu->reset();
  n.disk->reset();
}

void Cluster::revive_node(net::NodeId id) {
  auto& n = node(id);
  if (n.alive) return;
  n.alive = true;
  network_->set_alive(id, true);
  network_->reset_node(id);
}

}  // namespace ms::core
